#include "fuzz/orchestrator.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <filesystem>
#include <limits>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

#include "fuzz/mutator.h"
#include "fuzz/reproducer.h"

namespace ruleplace::fuzz {

namespace {

using Clock = std::chrono::steady_clock;

/// Result of checking one (case, mode) pair inside an iteration.
struct IterationOutcome {
  std::int64_t casesChecked = 0;
  std::int64_t modesChecked = 0;
  OracleCounters counters;
  std::vector<FailureRecord> failures;
};

std::string sanitizeForFilename(std::string text) {
  for (char& c : text) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' && c != '_') {
      c = '_';
    }
  }
  return text;
}

void handleFailure(const FuzzConfig& config, std::uint64_t iteration,
                   std::uint64_t caseSeed, const FuzzCase& fc,
                   const ModeConfig& mode, const OracleReport& report,
                   IterationOutcome& out) {
  FailureRecord record;
  record.iteration = iteration;
  record.caseSeed = caseSeed;
  record.mode = mode;
  record.message = report.summary();

  record.minimized = fc;
  if (config.minimize) {
    // The predicate re-runs the oracle: any violation in the same mode
    // counts as "still failing" (a shrink frequently turns e.g. a
    // determinism bug into a cleaner semantics bug; both are the defect).
    FailurePredicate fails = [&](const FuzzCase& candidate) {
      return !checkCase(candidate, mode, config.oracle).ok();
    };
    record.minimized = minimizeCase(fc, fails, &record.minimizeStats,
                                    config.minimizeEvaluations);
  }

  if (!config.outDir.empty()) {
    std::ostringstream name;
    name << "repro_iter" << iteration << "_"
         << sanitizeForFilename(toString(report.violations.front().kind))
         << ".scenario";
    std::filesystem::path path =
        std::filesystem::path(config.outDir) / name.str();
    try {
      // Stage stats from one deterministic jobs=1 re-solve of the
      // minimized case: triage data without replaying the failure.
      const std::string stages =
          stageStatsFor(record.minimized, mode, config.oracle);
      writeReproducer(path.string(), record.minimized, mode, caseSeed,
                      record.message, stages);
      record.reproducerPath = path.string();
    } catch (const std::exception&) {
      // Leave reproducerPath empty; the record still carries the case.
    }
  }
  out.failures.push_back(std::move(record));
}

/// Sample up to `extra` additional mode indices from [1, modeCount).
std::vector<std::size_t> pickModeIndices(std::size_t modeCount, int extra,
                                         util::Rng& rng) {
  std::vector<std::size_t> indices{0};
  if (modeCount <= 1 || extra <= 0) return indices;
  std::vector<std::size_t> rest;
  for (std::size_t i = 1; i < modeCount; ++i) rest.push_back(i);
  // Partial Fisher-Yates: the first `extra` slots become the sample.
  const std::size_t want =
      std::min<std::size_t>(static_cast<std::size_t>(extra), rest.size());
  for (std::size_t i = 0; i < want; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(
                rng.below(static_cast<std::uint64_t>(rest.size() - i)));
    std::swap(rest[i], rest[j]);
    indices.push_back(rest[i]);
  }
  std::sort(indices.begin(), indices.end());
  return indices;
}

IterationOutcome runIteration(const FuzzConfig& config,
                              std::uint64_t iteration) {
  IterationOutcome out;
  util::Rng rng = util::Rng(config.seed).stream(iteration);
  const std::uint64_t caseSeed = rng.next();
  FuzzCase fc = generateCase(caseSeed);
  const bool mutate = config.mutateProbability > 0.0 &&
                      rng.below(1000) <
                          static_cast<std::uint64_t>(
                              config.mutateProbability * 1000.0);

  auto checkOne = [&](const FuzzCase& candidate) {
    const std::vector<ModeConfig> modes = modeMatrix(candidate);
    const std::vector<std::size_t> picks =
        pickModeIndices(modes.size(), config.extraModesPerCase, rng);
    ++out.casesChecked;
    for (std::size_t idx : picks) {
      const ModeConfig& mode = modes[idx];
      ++out.modesChecked;
      OracleReport report = checkCase(candidate, mode, config.oracle);
      out.counters.add(report.counters);
      if (!report.ok()) {
        handleFailure(config, iteration, caseSeed, candidate, mode, report,
                      out);
      }
    }
  };

  checkOne(fc);
  if (mutate) checkOne(mutateCase(fc, rng));
  return out;
}

}  // namespace

std::string FuzzSummary::toString() const {
  std::ostringstream os;
  os << iterations << " iterations, " << casesChecked << " cases, "
     << modesChecked << " mode runs: " << counters.solves << " solves, "
     << counters.semanticChecks << " semantic checks, "
     << counters.bruteChecks << " brute-force checks, "
     << counters.determinismComparisons << " determinism comparisons, "
     << counters.statusCrossChecks << " status cross-checks, "
     << counters.incrementalChecks << " incremental checks, "
     << counters.degradedChecks << " degraded checks; "
     << failures.size() << " violation(s)";
  return os.str();
}

FuzzSummary runFuzz(const FuzzConfig& config) {
  if (!config.outDir.empty()) {
    std::filesystem::create_directories(config.outDir);
  }

  const Clock::time_point deadline =
      config.seconds > 0.0
          ? Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(config.seconds))
          : Clock::time_point::max();
  const std::uint64_t maxIterations =
      config.seconds > 0.0
          ? std::numeric_limits<std::uint64_t>::max()
          : static_cast<std::uint64_t>(std::max(config.iterations, 0));

  FuzzSummary summary;
  std::mutex mu;  // guards summary and config.log
  std::atomic<std::uint64_t> nextIteration{0};

  auto workerLoop = [&] {
    for (;;) {
      const std::uint64_t i = nextIteration.fetch_add(1);
      if (i >= maxIterations || Clock::now() >= deadline) return;
      IterationOutcome out = runIteration(config, i);
      std::lock_guard<std::mutex> lock(mu);
      ++summary.iterations;
      summary.casesChecked += out.casesChecked;
      summary.modesChecked += out.modesChecked;
      summary.counters.add(out.counters);
      for (auto& f : out.failures) {
        if (config.log != nullptr) {
          *config.log << "iteration " << f.iteration << " mode ["
                      << f.mode.toString() << "]: " << f.message << '\n';
        }
        summary.failures.push_back(std::move(f));
      }
      if (config.log != nullptr && out.failures.empty()) {
        *config.log << "iteration " << i << " ok (" << out.modesChecked
                    << " mode runs)\n";
      }
    }
  };

  const int workers = std::max(config.workers, 1);
  if (workers == 1) {
    workerLoop();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) threads.emplace_back(workerLoop);
    for (auto& t : threads) t.join();
  }

  // Deterministic report order regardless of worker scheduling.
  std::stable_sort(summary.failures.begin(), summary.failures.end(),
                   [](const FailureRecord& a, const FailureRecord& b) {
                     return a.iteration < b.iteration;
                   });
  return summary;
}

OracleReport checkAllModes(const FuzzCase& fc,
                           const std::vector<ModeConfig>& modes,
                           const OracleOptions& options,
                           OracleCounters* counters) {
  const std::vector<ModeConfig> all =
      modes.empty() ? modeMatrix(fc) : modes;
  OracleReport merged;
  for (const ModeConfig& mode : all) {
    OracleReport report = checkCase(fc, mode, options);
    merged.counters.add(report.counters);
    for (Violation& v : report.violations) {
      v.message = "[" + mode.toString() + "] " + v.message;
      merged.violations.push_back(std::move(v));
    }
  }
  if (counters != nullptr) counters->add(merged.counters);
  return merged;
}

}  // namespace ruleplace::fuzz
