#pragma once
// Delta-debugging minimizer: shrink a failing fuzz case while the failure
// keeps reproducing, so a reproducer is small enough to read and to check
// into tests/corpus/.
//
// Reduction passes (to fixpoint, each candidate accepted only when the
// caller's predicate still fails on it):
//   * drop whole policies (with their routing),
//   * drop individual paths (a policy always keeps >= 1),
//   * drop rules — ddmin-style chunks first, then singles,
//   * drop switches unused by any remaining path, rebuilding the graph
//     with compacted switch/port ids.

#include <functional>

#include "fuzz/generator.h"

namespace ruleplace::fuzz {

/// Returns true when the candidate still exhibits the failure under
/// investigation.  The minimizer never accepts a candidate the predicate
/// rejects, and skips candidates that fail problem validation.
using FailurePredicate = std::function<bool(const FuzzCase&)>;

struct MinimizeStats {
  int rulesBefore = 0, rulesAfter = 0;
  int pathsBefore = 0, pathsAfter = 0;
  int policiesBefore = 0, policiesAfter = 0;
  int switchesBefore = 0, switchesAfter = 0;
  int evaluations = 0;  ///< predicate calls spent

  std::string toString() const;
};

/// Shrink `failing` (which must satisfy the predicate).  `maxEvaluations`
/// caps predicate calls; the best case found so far is returned when the
/// cap is hit.
FuzzCase minimizeCase(const FuzzCase& failing, const FailurePredicate& fails,
                      MinimizeStats* stats = nullptr,
                      int maxEvaluations = 2000);

/// Rebuild the case's graph keeping only switches on some path (plus the
/// entry ports paths reference), compacting ids.  Exposed for tests.
FuzzCase dropUnusedSwitches(const FuzzCase& fc);

}  // namespace ruleplace::fuzz
