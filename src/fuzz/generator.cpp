#include "fuzz/generator.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "classbench/generator.h"
#include "topo/fattree.h"

namespace ruleplace::fuzz {

const char* toString(TopologyKind k) {
  switch (k) {
    case TopologyKind::kLinear: return "linear";
    case TopologyKind::kLeafSpine: return "leaf-spine";
    case TopologyKind::kFatTree: return "fat-tree";
    case TopologyKind::kWaxman: return "waxman";
  }
  return "?";
}

std::string GenParams::describe() const {
  std::ostringstream os;
  os << toString(topology) << " ~" << switchTarget << "sw, " << policyCount
     << " policies x " << rulesPerPolicy << " rules, " << pathsPerIngress
     << (ecmp ? " ecmp-flows" : " paths") << "/ingress"
     << (trafficDescriptors ? ", traffic-dst" : "")
     << (rawCubePolicies ? ", raw-cubes" : ", 5-tuple")
     << (sharedBlacklist > 0 ? ", shared=" + std::to_string(sharedBlacklist)
                             : "")
     << ", capx" << capacityFactor;
  return os.str();
}

namespace {

// Waxman random graph: switches at random unit-square coordinates, link
// probability alpha * exp(-d / (beta * L)).  A spanning chain over a random
// permutation guarantees connectivity regardless of the draw.
void buildWaxman(topo::Graph& g, int n, util::Rng& rng) {
  std::vector<double> x(static_cast<std::size_t>(n));
  std::vector<double> y(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    g.addSwitch(0, topo::SwitchRole::kGeneric, "w" + std::to_string(i));
    x[static_cast<std::size_t>(i)] = rng.uniform();
    y[static_cast<std::size_t>(i)] = rng.uniform();
  }
  const double alpha = 0.4 + 0.4 * rng.uniform();
  const double beta = 0.3 + 0.4 * rng.uniform();
  const double kMaxDist = std::sqrt(2.0);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      double dx = x[static_cast<std::size_t>(i)] - x[static_cast<std::size_t>(j)];
      double dy = y[static_cast<std::size_t>(i)] - y[static_cast<std::size_t>(j)];
      double d = std::sqrt(dx * dx + dy * dy);
      if (rng.chance(alpha * std::exp(-d / (beta * kMaxDist)))) {
        g.addLink(i, j);
      }
    }
  }
  std::vector<topo::SwitchId> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  rng.shuffle(order);
  for (int i = 0; i + 1 < n; ++i) {
    topo::SwitchId a = order[static_cast<std::size_t>(i)];
    topo::SwitchId b = order[static_cast<std::size_t>(i + 1)];
    if (!g.hasLink(a, b)) g.addLink(a, b);
  }
  // Entry ports on distinct random switches (at least 2 so routing has an
  // egress choice), every switch at most one port.
  int ports = std::max(2, n / 2);
  std::vector<topo::SwitchId> hosts = order;
  rng.shuffle(hosts);
  for (int i = 0; i < ports && i < n; ++i) {
    g.addEntryPort(hosts[static_cast<std::size_t>(i)],
                   "h" + std::to_string(i));
  }
}

// The stock builders leave some switch names empty; scenario round-trip
// needs every switch named.
void ensureNames(topo::Graph& g) {
  for (int i = 0; i < g.switchCount(); ++i) {
    if (g.sw(i).name.empty()) g.sw(i).name = "s" + std::to_string(i);
  }
}

match::Ternary randomCube(util::Rng& rng, int width) {
  match::Ternary t(width);
  for (int i = 0; i < width; ++i) {
    std::uint64_t r = rng.below(4);
    t.setBit(i, r >= 2 ? -1 : static_cast<int>(r));  // 50% wildcard
  }
  return t;
}

acl::Policy rawCubePolicy(util::Rng& rng, int rules, int width) {
  acl::Policy q;
  bool haveDrop = false;
  for (int r = 0; r < rules; ++r) {
    bool drop = rng.chance(0.5) || (r == rules - 1 && !haveDrop);
    haveDrop |= drop;
    q.addRule(randomCube(rng, width),
              drop ? acl::Action::kDrop : acl::Action::kPermit);
  }
  return q;
}

}  // namespace

GenParams sampleParams(util::Rng& rng) {
  GenParams p;
  // ~40% tiny cases keep the brute-force optimality oracle in play.
  const bool tiny = rng.chance(0.4);
  if (tiny) {
    p.topology = rng.chance(0.5) ? TopologyKind::kLinear
                                 : TopologyKind::kWaxman;
    p.switchTarget = static_cast<int>(rng.range(2, 4));
    p.policyCount = 1;
    p.rulesPerPolicy = static_cast<int>(rng.range(2, 4));
    p.pathsPerIngress = static_cast<int>(rng.range(1, 2));
    p.rawCubePolicies = true;
    p.rawWidth = static_cast<int>(rng.range(4, 8));
    p.sharedBlacklist = 0;
    p.capacityFactor = 0.4 + 1.8 * rng.uniform();
  } else {
    switch (rng.below(4)) {
      case 0: p.topology = TopologyKind::kLinear; break;
      case 1: p.topology = TopologyKind::kLeafSpine; break;
      case 2: p.topology = TopologyKind::kFatTree; break;
      default: p.topology = TopologyKind::kWaxman; break;
    }
    p.switchTarget = static_cast<int>(rng.range(4, 14));
    p.policyCount = static_cast<int>(rng.range(1, 4));
    p.rulesPerPolicy = static_cast<int>(rng.range(3, 12));
    p.pathsPerIngress = static_cast<int>(rng.range(1, 3));
    p.ecmp = rng.chance(0.3);
    p.rawCubePolicies = rng.chance(0.35);
    p.rawWidth = static_cast<int>(rng.range(4, 8));
    // Traffic descriptors are 104-bit dst cubes; widths must match rules.
    p.trafficDescriptors = !p.rawCubePolicies && rng.chance(0.5);
    p.sharedBlacklist =
        rng.chance(0.4) ? static_cast<int>(rng.range(1, 3)) : 0;
    p.capacityFactor = 0.6 + 3.0 * rng.uniform();
  }
  p.perSwitchCapacityJitter = rng.chance(0.7);
  return p;
}

FuzzCase generateCase(const GenParams& params, util::Rng& rng) {
  FuzzCase fc;
  fc.graph = std::make_shared<topo::Graph>();
  topo::Graph& g = *fc.graph;

  switch (params.topology) {
    case TopologyKind::kLinear:
      topo::buildLinear(g, std::max(1, params.switchTarget), 0);
      break;
    case TopologyKind::kLeafSpine: {
      int leaves = std::max(2, params.switchTarget * 2 / 3);
      int spines = std::max(1, params.switchTarget - leaves);
      topo::buildLeafSpine(g, leaves, spines, /*hostsPerLeaf=*/2, 0);
      break;
    }
    case TopologyKind::kFatTree:
      topo::buildFatTree(g, 4, 0);  // 20 switches, 16 host ports
      break;
    case TopologyKind::kWaxman:
      buildWaxman(g, std::max(2, params.switchTarget), rng);
      break;
  }
  ensureNames(g);

  // Ingress selection: without replacement, capped by available ports.
  std::vector<topo::PortId> ports;
  for (int i = 0; i < g.entryPortCount(); ++i) ports.push_back(i);
  rng.shuffle(ports);
  const int nPolicies =
      std::min(params.policyCount, static_cast<int>(ports.size()));
  std::vector<topo::PortId> ingresses(ports.begin(),
                                      ports.begin() + nPolicies);
  std::sort(ingresses.begin(), ingresses.end());

  if (params.ecmp) {
    fc.routing = topo::generateEcmpPaths(
        g, ingresses, params.pathsPerIngress,
        /*maxPathsPerFlow=*/static_cast<int>(rng.range(2, 3)), rng);
  } else {
    fc.routing = topo::generatePaths(
        g, ingresses, nPolicies * params.pathsPerIngress, rng);
  }
  if (params.trafficDescriptors) {
    topo::assignDstPrefixTraffic(fc.routing, 0x0a000000u /*10.0.0.0*/, 24);
  }

  // Capacities: scaled to the per-policy rule volume, with optional
  // per-switch jitter so some switches become contended.
  const int volume = params.rulesPerPolicy + params.sharedBlacklist;
  for (int sw = 0; sw < g.switchCount(); ++sw) {
    double cap = params.capacityFactor * volume;
    if (params.perSwitchCapacityJitter) {
      cap *= 0.7 + 0.6 * rng.uniform();
    }
    g.sw(sw).capacity = std::max(1, static_cast<int>(std::lround(cap)));
  }

  // Policies.
  if (params.rawCubePolicies) {
    std::vector<std::pair<match::Ternary, acl::Action>> shared;
    for (int i = 0; i < params.sharedBlacklist; ++i) {
      shared.emplace_back(randomCube(rng, params.rawWidth),
                          acl::Action::kDrop);
    }
    for (int i = 0; i < nPolicies; ++i) {
      acl::Policy q =
          rawCubePolicy(rng, params.rulesPerPolicy, params.rawWidth);
      for (const auto& [cube, action] : shared) q.addRule(cube, action);
      fc.policies.push_back(std::move(q));
    }
  } else {
    classbench::GeneratorConfig gen;
    gen.rulesPerPolicy = params.rulesPerPolicy;
    if (params.trafficDescriptors) {
      // Destination-aware rules so path slicing keeps a realistic share.
      for (const auto& ip : fc.routing) {
        for (const auto& path : ip.paths) {
          std::uint32_t subnet = static_cast<std::uint32_t>(path.egress) << 8;
          gen.dstPool.push_back({0x0a000000u | subnet, 24});
        }
      }
      gen.dstPoolProb = 0.75;
    }
    classbench::PolicyGenerator generator(gen, rng.next());
    std::vector<acl::Rule> blacklist;
    if (params.sharedBlacklist > 0) {
      blacklist = generator.globalBlacklist(params.sharedBlacklist);
    }
    for (int i = 0; i < nPolicies; ++i) {
      acl::Policy q = generator.generate();
      if (!blacklist.empty()) {
        classbench::PolicyGenerator::appendShared(q, blacklist);
      }
      fc.policies.push_back(std::move(q));
    }
  }

  fc.problem().validate();
  return fc;
}

FuzzCase generateCase(std::uint64_t seed) {
  util::Rng rng(seed);
  GenParams params = sampleParams(rng);
  return generateCase(params, rng);
}

}  // namespace ruleplace::fuzz
