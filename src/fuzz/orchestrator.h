#pragma once
// Fuzz orchestrator: the loop that ties generator, mutator, oracle,
// minimizer and reproducer I/O together.
//
// Every iteration i derives its own RNG as Rng(seed).stream(i), so a run
// is reproducible from (seed, iteration) alone and parallel workers give
// identical per-iteration results regardless of scheduling.  With
// --iterations the whole run is deterministic; with --seconds the set of
// iterations completed depends on machine speed (the results per iteration
// still don't).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fuzz/generator.h"
#include "fuzz/minimizer.h"
#include "fuzz/oracle.h"

namespace ruleplace::fuzz {

struct FuzzConfig {
  std::uint64_t seed = 1;
  int iterations = 50;   ///< used when seconds <= 0
  double seconds = 0.0;  ///< wall-clock bound; 0 = iteration-bound
  int workers = 1;       ///< parallel fuzz workers (each drives full solves)
  /// Modes checked per case: the reference mode plus up to this many
  /// further samples from the case's mode matrix.
  int extraModesPerCase = 3;
  /// Probability that a case is additionally mutated before checking.
  double mutateProbability = 0.3;
  bool minimize = true;
  int minimizeEvaluations = 600;
  std::string outDir;  ///< reproducers land here; empty = don't write
  OracleOptions oracle;
  std::ostream* log = nullptr;  ///< per-iteration progress (verbose)
};

struct FailureRecord {
  std::uint64_t iteration = 0;
  std::uint64_t caseSeed = 0;
  ModeConfig mode;
  std::string message;          ///< violation summary
  std::string reproducerPath;   ///< empty when outDir unset / write failed
  MinimizeStats minimizeStats;  ///< valid when minimization ran
  FuzzCase minimized;           ///< the shrunken failing case
};

struct FuzzSummary {
  std::int64_t iterations = 0;
  std::int64_t casesChecked = 0;  ///< generated + mutated variants
  std::int64_t modesChecked = 0;
  OracleCounters counters;
  std::vector<FailureRecord> failures;

  bool ok() const noexcept { return failures.empty(); }
  std::string toString() const;
};

/// Run the fuzz loop.  Failures are minimized (when configured) and
/// written to config.outDir as reproducer files.
FuzzSummary runFuzz(const FuzzConfig& config);

/// Check every applicable mode of one case (used by --replay and by the
/// corpus test).  `modes` empty = full matrix.
OracleReport checkAllModes(const FuzzCase& fc,
                           const std::vector<ModeConfig>& modes,
                           const OracleOptions& options,
                           OracleCounters* counters = nullptr);

}  // namespace ruleplace::fuzz
