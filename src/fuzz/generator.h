#pragma once
// Seeded random scenario generator for the differential fuzzer.
//
// Samples a whole placement problem — topology (Fat-Tree / leaf-spine /
// linear / Waxman random graph), per-switch TCAM capacities, routed paths
// (single shortest path or ECMP groups, optionally with dst-prefix traffic
// descriptors), and per-ingress prioritized policies (ClassBench-style
// 5-tuple rules or small raw ternary cubes) — from a single 64-bit seed.
// Every draw flows through util::Rng, so a seed reproduces the exact case
// on any platform; the orchestrator derives per-iteration seeds with
// Rng::stream() so parallel fuzz workers stay deterministic.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/problem.h"
#include "topo/graph.h"
#include "topo/routing.h"
#include "util/rng.h"

namespace ruleplace::fuzz {

/// Topology families the generator samples from.
enum class TopologyKind : std::uint8_t {
  kLinear,
  kLeafSpine,
  kFatTree,
  kWaxman,  ///< random geometric graph (Waxman), chained to stay connected
};

const char* toString(TopologyKind k);

/// Sampled shape of one fuzz case.  Exposed (rather than hidden inside the
/// generator) so failures can be described and so tests can pin families.
struct GenParams {
  TopologyKind topology = TopologyKind::kLinear;
  int switchTarget = 3;      ///< approximate switch count (exact for waxman)
  int policyCount = 1;
  int rulesPerPolicy = 3;
  int pathsPerIngress = 1;
  bool ecmp = false;         ///< install whole equal-cost groups per flow
  bool trafficDescriptors = false;  ///< attach dst-prefix traffic to paths
  bool rawCubePolicies = false;     ///< small raw cubes instead of 5-tuples
  int rawWidth = 6;          ///< header width for raw-cube policies
  int sharedBlacklist = 0;   ///< identical rules appended to every policy
  /// Capacity regime: multiple of the per-policy rule count.  < 1.0 makes
  /// tight (sometimes infeasible) instances, large values decouple policies.
  double capacityFactor = 2.0;
  bool perSwitchCapacityJitter = true;

  std::string describe() const;
};

/// A self-contained problem instance.  The graph is shared so copies made
/// by the minimizer are cheap and the problem() view stays pointer-stable.
struct FuzzCase {
  std::shared_ptr<topo::Graph> graph;
  std::vector<topo::IngressPaths> routing;
  std::vector<acl::Policy> policies;

  core::PlacementProblem problem() const {
    return {graph.get(), routing, policies, {}};
  }
};

/// Sample a case shape.  Roughly 40% of draws are "tiny" (few rules on a
/// few switches) so the brute-force optimality oracle applies often.
GenParams sampleParams(util::Rng& rng);

/// Materialize a case from a shape.  All switches and entry ports receive
/// unique names so the case round-trips through io::formatScenario.
FuzzCase generateCase(const GenParams& params, util::Rng& rng);

/// Convenience: sample + materialize from one seed.
FuzzCase generateCase(std::uint64_t seed);

}  // namespace ruleplace::fuzz
