#pragma once
// Reproducer files: a failing fuzz case as one self-contained scenario.
//
// A reproducer is a plain io::scenario file with a machine-readable comment
// header carrying everything needed to replay the failure:
//
//     # ruleplace-fuzz reproducer
//     # seed 1234
//     # mode merge=1 slice=0 sat-only=0 redundancy=0 objective=total-rules base=0
//     # violation determinism: placement jobs=1 vs jobs=2: ...
//     switch s0 capacity 2
//     ...
//
// Comment lines are ignored by the scenario parser, so a reproducer can be
// fed straight to ruleplace_cli, replayed by `ruleplace_fuzz --replay`, or
// checked into tests/corpus/ where test_fuzz_corpus re-runs it through
// every placement mode on each CI run.

#include <cstdint>
#include <string>
#include <string_view>

#include "fuzz/generator.h"
#include "fuzz/oracle.h"

namespace ruleplace::fuzz {

struct Reproducer {
  FuzzCase fuzzCase;
  ModeConfig mode;          ///< mode the failure was observed in
  std::uint64_t seed = 0;   ///< orchestrator case seed (0 when unknown)
  std::string note;         ///< violation summary (free text)
};

/// Render a reproducer document (header + scenario body).
std::string formatReproducer(const FuzzCase& fc, const ModeConfig& mode,
                             std::uint64_t seed, const std::string& note);

/// Write to `path`; throws std::runtime_error when the file can't open.
void writeReproducer(const std::string& path, const FuzzCase& fc,
                     const ModeConfig& mode, std::uint64_t seed,
                     const std::string& note);

/// Parse a reproducer document.  A plain scenario file (no fuzz header)
/// loads too: mode defaults, seed 0.  Throws on malformed scenarios.
Reproducer parseReproducer(std::string_view text);

/// Load from a file path (wraps parseReproducer).
Reproducer loadReproducer(const std::string& path);

/// Build a case from scenario text (the graph is copied onto the shared
/// handle FuzzCase owns).
FuzzCase caseFromScenarioText(std::string_view text);

}  // namespace ruleplace::fuzz
