#pragma once
// Reproducer files: a failing fuzz case as one self-contained scenario.
//
// A reproducer is a plain io::scenario file with a machine-readable comment
// header carrying everything needed to replay the failure:
//
//     # ruleplace-fuzz reproducer
//     # seed 1234
//     # mode merge=1 slice=0 sat-only=0 redundancy=0 objective=total-rules base=0
//     # violation determinism: placement jobs=1 vs jobs=2: ...
//     # stages encode_ms=1.2 solve_ms=3.4 conflicts=17 propagations=240 ...
//     switch s0 capacity 2
//     ...
//
// The `# stages` line (optional) is a deterministic single-threaded
// re-solve of the minimized case in the failing mode: per-stage timings
// and solver work, so a failure can be triaged without replaying it.
//
// Comment lines are ignored by the scenario parser, so a reproducer can be
// fed straight to ruleplace_cli, replayed by `ruleplace_fuzz --replay`, or
// checked into tests/corpus/ where test_fuzz_corpus re-runs it through
// every placement mode on each CI run.

#include <cstdint>
#include <string>
#include <string_view>

#include "fuzz/generator.h"
#include "fuzz/oracle.h"

namespace ruleplace::fuzz {

struct Reproducer {
  FuzzCase fuzzCase;
  ModeConfig mode;          ///< mode the failure was observed in
  std::uint64_t seed = 0;   ///< orchestrator case seed (0 when unknown)
  std::string note;         ///< violation summary (free text)
  std::string stages;       ///< per-stage stats line (empty when absent)
};

/// Render the `# stages` header value for one case: deterministic
/// single-threaded (jobs=1) re-solve under the oracle's conflict budget,
/// formatted as space-separated key=value pairs.
std::string stageStatsFor(const FuzzCase& fc, const ModeConfig& mode,
                          const OracleOptions& oracle);

/// Render a reproducer document (header + scenario body).  `stages` (the
/// stageStatsFor value) is embedded as a `# stages` line when non-empty.
std::string formatReproducer(const FuzzCase& fc, const ModeConfig& mode,
                             std::uint64_t seed, const std::string& note,
                             const std::string& stages = {});

/// Write to `path`; throws std::runtime_error when the file can't open.
void writeReproducer(const std::string& path, const FuzzCase& fc,
                     const ModeConfig& mode, std::uint64_t seed,
                     const std::string& note,
                     const std::string& stages = {});

/// Parse a reproducer document.  A plain scenario file (no fuzz header)
/// loads too: mode defaults, seed 0.  Throws on malformed scenarios.
Reproducer parseReproducer(std::string_view text);

/// Load from a file path (wraps parseReproducer).
Reproducer loadReproducer(const std::string& path);

/// Build a case from scenario text (the graph is copied onto the shared
/// handle FuzzCase owns).
FuzzCase caseFromScenarioText(std::string_view text);

}  // namespace ruleplace::fuzz
