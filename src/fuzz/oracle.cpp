#include "fuzz/oracle.h"

#include <algorithm>
#include <sstream>

#include "acl/redundancy.h"
#include "core/incremental.h"
#include "core/verify.h"
#include "depgraph/depgraph.h"
#include "depgraph/merging.h"
#include "solver/bruteforce.h"

namespace ruleplace::fuzz {

namespace {

const char* objectiveName(core::ObjectiveKind k) {
  switch (k) {
    case core::ObjectiveKind::kTotalRules: return "total-rules";
    case core::ObjectiveKind::kUpstreamTraffic: return "upstream-traffic";
    case core::ObjectiveKind::kWeightedSwitch: return "weighted-switch";
  }
  return "?";
}

std::string describeOutcome(const core::PlaceOutcome& out) {
  std::ostringstream os;
  os << solver::toString(out.status);
  if (out.hasSolution()) {
    os << " obj=" << out.objective
       << " installed=" << out.placement.totalInstalledRules();
  }
  if (out.degraded) os << " rung=" << core::toString(out.rung);
  if (out.partial) {
    os << " partial=" << out.failedComponents << "/"
       << out.componentStats.size();
  }
  return os.str();
}

}  // namespace

core::PlaceOptions optionsFor(const ModeConfig& mode,
                              const OracleOptions& oracle, int jobs) {
  core::PlaceOptions o;
  o.encoder.enableMerging = mode.merge;
  o.encoder.enablePathSlicing = mode.slice;
  o.encoder.objective = mode.objective;
  o.satisfiabilityOnly = mode.satOnly;
  o.removeRedundancy = mode.removeRedundancy;
  o.budget = solver::Budget::conflicts(
      mode.conflictBudget >= 0 ? mode.conflictBudget : oracle.conflictBudget);
  o.resilience.ladder = mode.ladder;
  o.resilience.partialResults = mode.partial;
  o.portfolio = mode.portfolio;
  o.threads = jobs;
  return o;
}

std::string ModeConfig::toString() const {
  std::ostringstream os;
  os << "merge=" << (merge ? 1 : 0) << " slice=" << (slice ? 1 : 0)
     << " sat-only=" << (satOnly ? 1 : 0)
     << " redundancy=" << (removeRedundancy ? 1 : 0)
     << " objective=" << objectiveName(objective) << " base=" << basePolicies;
  if (ladder) os << " ladder=1";
  if (partial) os << " partial=1";
  if (conflictBudget >= 0) os << " conflicts=" << conflictBudget;
  if (portfolio) os << " portfolio=1";
  return os.str();
}

std::optional<ModeConfig> ModeConfig::parse(std::string_view text) {
  ModeConfig mode;
  std::istringstream is{std::string(text)};
  std::string tok;
  while (is >> tok) {
    std::size_t eq = tok.find('=');
    if (eq == std::string::npos) return std::nullopt;
    std::string key = tok.substr(0, eq);
    std::string value = tok.substr(eq + 1);
    if (key == "merge") {
      mode.merge = value == "1";
    } else if (key == "slice") {
      mode.slice = value == "1";
    } else if (key == "sat-only") {
      mode.satOnly = value == "1";
    } else if (key == "redundancy") {
      mode.removeRedundancy = value == "1";
    } else if (key == "objective") {
      if (value == "total-rules") {
        mode.objective = core::ObjectiveKind::kTotalRules;
      } else if (value == "upstream-traffic") {
        mode.objective = core::ObjectiveKind::kUpstreamTraffic;
      } else {
        return std::nullopt;
      }
    } else if (key == "base") {
      try {
        mode.basePolicies = std::stoi(value);
      } catch (...) {
        return std::nullopt;
      }
    } else if (key == "ladder") {
      mode.ladder = value == "1";
    } else if (key == "partial") {
      mode.partial = value == "1";
    } else if (key == "conflicts") {
      try {
        mode.conflictBudget = std::stoll(value);
      } catch (...) {
        return std::nullopt;
      }
    } else if (key == "portfolio") {
      mode.portfolio = value == "1";
    } else {
      return std::nullopt;
    }
  }
  return mode;
}

std::vector<ModeConfig> modeMatrix(const FuzzCase& fc) {
  bool hasTraffic = false;
  for (const auto& ip : fc.routing) {
    for (const auto& p : ip.paths) hasTraffic |= p.traffic.has_value();
  }
  const int n = static_cast<int>(fc.policies.size());

  std::vector<ModeConfig> modes;
  auto add = [&](ModeConfig m) { modes.push_back(m); };

  add({});  // plain ILP, total-rules — the reference mode, always first
  {
    ModeConfig m;
    m.merge = true;
    add(m);
  }
  {
    ModeConfig m;
    m.satOnly = true;
    add(m);
  }
  {
    ModeConfig m;
    m.objective = core::ObjectiveKind::kUpstreamTraffic;
    add(m);
  }
  {
    ModeConfig m;
    m.removeRedundancy = true;
    add(m);
  }
  if (hasTraffic) {
    ModeConfig m;
    m.slice = true;
    add(m);
    m.merge = true;
    add(m);
  }
  {
    ModeConfig m;
    m.merge = true;
    m.satOnly = true;
    add(m);
  }
  {
    // Ladder floor: a zero conflict budget fails every exact solve
    // deterministically, so the pipeline must degrade all the way to
    // greedy — and the greedy placement must still verify exactly.
    ModeConfig m;
    m.ladder = true;
    m.partial = true;
    m.conflictBudget = 0;
    add(m);
  }
  {
    // Ladder as a no-op: with the full budget the exact solve usually
    // succeeds and the ladder must not perturb the optimal outcome.
    ModeConfig m;
    m.ladder = true;
    m.merge = true;
    add(m);
  }
  {
    // Portfolio race: priority arbitration must keep the jobs sweep
    // bit-identical even though racers run concurrently.
    ModeConfig m;
    m.portfolio = true;
    add(m);
    m.satOnly = true;
    add(m);
  }
  if (n >= 2) {
    ModeConfig m;
    m.basePolicies = n / 2 > 0 ? n / 2 : 1;
    add(m);
    m.merge = true;
    add(m);
  }
  return modes;
}

const char* toString(ViolationKind k) {
  switch (k) {
    case ViolationKind::kSemantics: return "semantics";
    case ViolationKind::kOptimality: return "optimality";
    case ViolationKind::kDeterminism: return "determinism";
    case ViolationKind::kStatus: return "status";
    case ViolationKind::kIncremental: return "incremental";
    case ViolationKind::kIncrementalSolver: return "incremental-solver";
    case ViolationKind::kDepgraph: return "depgraph";
    case ViolationKind::kDegraded: return "degraded";
    case ViolationKind::kCrash: return "crash";
  }
  return "?";
}

void OracleCounters::add(const OracleCounters& o) {
  solves += o.solves;
  semanticChecks += o.semanticChecks;
  bruteChecks += o.bruteChecks;
  determinismComparisons += o.determinismComparisons;
  statusCrossChecks += o.statusCrossChecks;
  incrementalChecks += o.incrementalChecks;
  incrementalSolverChecks += o.incrementalSolverChecks;
  depgraphChecks += o.depgraphChecks;
  degradedChecks += o.degradedChecks;
}

std::string OracleReport::summary() const {
  if (ok()) return "ok";
  std::ostringstream os;
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) os << "; ";
    os << toString(violations[i].kind) << ": " << violations[i].message;
  }
  return os.str();
}

bool placementsEqual(const core::Placement& a, const core::Placement& b,
                     std::string* why) {
  auto fail = [&](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  if (a.switchCount() != b.switchCount()) {
    return fail("switch count differs");
  }
  for (int sw = 0; sw < a.switchCount(); ++sw) {
    const auto& ta = a.table(sw);
    const auto& tb = b.table(sw);
    if (ta.size() != tb.size()) {
      return fail("switch " + std::to_string(sw) + ": " +
                  std::to_string(ta.size()) + " vs " +
                  std::to_string(tb.size()) + " entries");
    }
    for (std::size_t i = 0; i < ta.size(); ++i) {
      const auto& ea = ta[i];
      const auto& eb = tb[i];
      if (!(ea.matchField == eb.matchField) || ea.action != eb.action ||
          ea.tags != eb.tags || ea.priority != eb.priority ||
          ea.merged != eb.merged) {
        return fail("switch " + std::to_string(sw) + " entry " +
                    std::to_string(i) + " differs");
      }
    }
  }
  return true;
}

namespace {

/// Run the non-incremental pipeline over the jobs sweep; first outcome is
/// the reference, the rest are compared bit-for-bit.
std::optional<core::PlaceOutcome> sweepAndCompare(
    const FuzzCase& fc, const ModeConfig& mode, const OracleOptions& options,
    OracleReport& report) {
  std::optional<core::PlaceOutcome> ref;
  int refJobs = 0;
  for (int jobs : options.jobsSweep) {
    core::PlaceOutcome out;
    try {
      out = core::place(fc.problem(), optionsFor(mode, options, jobs));
    } catch (const std::exception& e) {
      report.violations.push_back(
          {ViolationKind::kCrash,
           std::string("place() threw with jobs=") + std::to_string(jobs) +
               ": " + e.what()});
      return std::nullopt;
    }
    if (options.hooks.afterPlace) options.hooks.afterPlace(out, mode, jobs);
    ++report.counters.solves;
    if (!ref.has_value()) {
      ref = std::move(out);
      refJobs = jobs;
      continue;
    }
    ++report.counters.determinismComparisons;
    if (out.status != ref->status || out.partial != ref->partial ||
        out.degraded != ref->degraded || out.rung != ref->rung ||
        out.failedComponents != ref->failedComponents) {
      report.violations.push_back(
          {ViolationKind::kDeterminism,
           "status jobs=" + std::to_string(refJobs) + " -> " +
               describeOutcome(*ref) + ", jobs=" + std::to_string(jobs) +
               " -> " + describeOutcome(out)});
      continue;
    }
    // Per-component rung and failure attribution is part of the
    // determinism contract too: a degraded run must degrade the *same*
    // components for every thread count.
    if (out.componentStats.size() == ref->componentStats.size()) {
      for (std::size_t c = 0; c < out.componentStats.size(); ++c) {
        const auto& a = ref->componentStats[c];
        const auto& b = out.componentStats[c];
        if (a.rung != b.rung || a.status != b.status ||
            a.failure.has_value() != b.failure.has_value()) {
          report.violations.push_back(
              {ViolationKind::kDeterminism,
               "component " + std::to_string(c) + " rung/failure jobs=" +
                   std::to_string(refJobs) + " vs jobs=" +
                   std::to_string(jobs)});
          break;
        }
      }
    }
    if (!mode.satOnly && out.hasSolution() &&
        out.objective != ref->objective) {
      report.violations.push_back(
          {ViolationKind::kDeterminism,
           "objective jobs=" + std::to_string(refJobs) + "=" +
               std::to_string(ref->objective) + " vs jobs=" +
               std::to_string(jobs) + "=" + std::to_string(out.objective)});
      continue;
    }
    std::string why;
    if (out.hasAnyPlacement() && ref->hasAnyPlacement() &&
        !placementsEqual(ref->placement, out.placement, &why)) {
      report.violations.push_back(
          {ViolationKind::kDeterminism,
           "placement jobs=" + std::to_string(refJobs) + " vs jobs=" +
               std::to_string(jobs) + ": " + why});
    }
  }
  return ref;
}

void checkSemantics(const core::PlaceOutcome& out, const ModeConfig& mode,
                    ViolationKind kind, OracleReport& report) {
  if (!out.hasSolution()) return;
  ++report.counters.semanticChecks;
  core::VerifyResult v = core::verifyPlacement(
      out.solvedProblem, out.placement, /*respectTraffic=*/mode.slice);
  if (!v.ok) {
    report.violations.push_back({kind, v.summary()});
  }
}

/// Degradation contract (check 4 in the header): a ladder placement must
/// verify exactly, a partial placement must carry nothing from failed
/// components, and the successful components' subset must verify.
void checkDegradedInvariants(const core::PlaceOutcome& out,
                             const ModeConfig& mode, OracleReport& report) {
  if (!out.degraded && !out.partial) return;
  ++report.counters.degradedChecks;

  if (out.degraded && out.hasSolution()) {
    core::VerifyResult v = core::verifyPlacement(
        out.solvedProblem, out.placement, /*respectTraffic=*/mode.slice);
    if (!v.ok) {
      report.violations.push_back(
          {ViolationKind::kDegraded,
           std::string("ladder placement (rung ") +
               core::toString(out.rung) +
               ") fails exact verification: " + v.summary()});
    }
  }
  if (!out.partial) return;

  std::vector<int> failedPolicies;
  std::vector<int> okPolicies;
  for (const auto& c : out.componentStats) {
    const bool solved = c.status == solver::OptStatus::kOptimal ||
                        c.status == solver::OptStatus::kFeasible;
    auto& dst = solved ? okPolicies : failedPolicies;
    dst.insert(dst.end(), c.policyIds.begin(), c.policyIds.end());
  }
  for (int sw = 0; sw < out.placement.switchCount(); ++sw) {
    for (const auto& entry : out.placement.table(sw)) {
      for (int tag : entry.tags) {
        if (std::find(failedPolicies.begin(), failedPolicies.end(), tag) !=
            failedPolicies.end()) {
          report.violations.push_back(
              {ViolationKind::kDegraded,
               "partial placement still carries an entry of failed "
               "component policy " +
                   std::to_string(tag) + " on switch " +
                   std::to_string(sw)});
          return;
        }
      }
    }
  }
  core::VerifyResult v =
      core::verifyPlacement(out.solvedProblem, out.placement,
                            /*respectTraffic=*/mode.slice, &okPolicies);
  if (!v.ok) {
    report.violations.push_back(
        {ViolationKind::kDegraded,
         "partial placement fails verification over its successful "
         "components: " +
             v.summary()});
  }
}

/// Re-encode the (preprocessed) problem monolithically and enumerate it.
/// This is deliberately *not* the placer's decomposed path: agreement
/// between the two is the point of the check.
void checkBruteForce(const FuzzCase& fc, const ModeConfig& mode,
                     const OracleOptions& options,
                     const core::PlaceOutcome& ref, OracleReport& report) {
  if (ref.status != solver::OptStatus::kOptimal &&
      ref.status != solver::OptStatus::kInfeasible) {
    return;  // budget-bound outcome: nothing exact to compare
  }
  try {
    core::PlacementProblem copy = fc.problem();
    if (mode.removeRedundancy) {
      for (auto& q : copy.policies) acl::removeRedundant(q);
    }
    depgraph::MergeAnalysis mergeInfo;
    if (mode.merge) mergeInfo = depgraph::analyzeMergeable(copy.policies);
    core::EncoderOptions enc;
    enc.enableMerging = mode.merge;
    enc.enablePathSlicing = mode.slice;
    enc.objective = mode.objective;
    core::Encoder encoder(copy, enc, mode.merge ? &mergeInfo : nullptr);
    if (encoder.model().varCount() > options.bruteMaxVars) return;

    ++report.counters.bruteChecks;
    solver::OptResult truth =
        solver::bruteForceSolve(encoder.model(), options.bruteMaxVars);
    const bool refInfeasible = ref.status == solver::OptStatus::kInfeasible;
    const bool truthInfeasible =
        truth.status == solver::OptStatus::kInfeasible;
    if (refInfeasible != truthInfeasible) {
      report.violations.push_back(
          {ViolationKind::kOptimality,
           std::string("feasibility disagrees: pipeline ") +
               solver::toString(ref.status) + ", brute force " +
               solver::toString(truth.status)});
      return;
    }
    if (!refInfeasible && !mode.satOnly &&
        truth.objective != ref.objective) {
      report.violations.push_back(
          {ViolationKind::kOptimality,
           "objective " + std::to_string(ref.objective) +
               " != brute-force optimum " +
               std::to_string(truth.objective)});
    }
  } catch (const std::exception& e) {
    report.violations.push_back(
        {ViolationKind::kCrash,
         std::string("brute-force re-encode threw: ") + e.what()});
  }
}

void checkStatusAgreement(const FuzzCase& fc, const ModeConfig& mode,
                          const OracleOptions& options,
                          const core::PlaceOutcome& ref,
                          OracleReport& report) {
  if (mode.satOnly) return;
  if (ref.status != solver::OptStatus::kOptimal &&
      ref.status != solver::OptStatus::kInfeasible) {
    return;
  }
  ModeConfig satMode = mode;
  satMode.satOnly = true;
  core::PlaceOutcome satOut;
  try {
    satOut = core::place(
        fc.problem(),
        optionsFor(satMode, options, options.jobsSweep.front()));
  } catch (const std::exception& e) {
    report.violations.push_back(
        {ViolationKind::kCrash,
         std::string("sat-only cross-solve threw: ") + e.what()});
    return;
  }
  if (options.hooks.afterPlace) {
    options.hooks.afterPlace(satOut, satMode, options.jobsSweep.front());
  }
  ++report.counters.solves;
  if (satOut.status != solver::OptStatus::kOptimal &&
      satOut.status != solver::OptStatus::kInfeasible) {
    return;  // undecided under budget
  }
  ++report.counters.statusCrossChecks;
  const bool ilpFeasible = ref.status == solver::OptStatus::kOptimal;
  const bool satFeasible = satOut.status == solver::OptStatus::kOptimal;
  if (ilpFeasible != satFeasible) {
    report.violations.push_back(
        {ViolationKind::kStatus,
         std::string("ILP says ") + solver::toString(ref.status) +
             " but SAT mode says " + solver::toString(satOut.status)});
  }
}

void checkIncremental(const FuzzCase& fc, const ModeConfig& mode,
                      const OracleOptions& options, OracleReport& report) {
  const int n = static_cast<int>(fc.policies.size());
  const int m = mode.basePolicies;
  if (m <= 0 || m >= n) return;
  ++report.counters.incrementalChecks;

  FuzzCase base;
  base.graph = fc.graph;
  base.routing.assign(fc.routing.begin(), fc.routing.begin() + m);
  base.policies.assign(fc.policies.begin(), fc.policies.begin() + m);
  std::vector<topo::IngressPaths> newRouting(fc.routing.begin() + m,
                                             fc.routing.end());
  std::vector<acl::Policy> newPolicies(fc.policies.begin() + m,
                                       fc.policies.end());

  std::optional<core::PlaceOutcome> refInc;
  int refJobs = 0;
  for (int jobs : options.jobsSweep) {
    core::PlaceOutcome incOut;
    try {
      core::PlaceOptions opts = optionsFor(mode, options, jobs);
      core::PlaceOutcome baseOut = core::place(base.problem(), opts);
      if (options.hooks.afterPlace) {
        options.hooks.afterPlace(baseOut, mode, jobs);
      }
      ++report.counters.solves;
      if (!baseOut.hasSolution()) return;  // tight base: nothing to install on
      incOut = core::installPolicies(base.problem(), baseOut.placement,
                                     newRouting, newPolicies, opts);
      if (options.hooks.afterPlace) {
        options.hooks.afterPlace(incOut, mode, jobs);
      }
      ++report.counters.solves;
    } catch (const std::exception& e) {
      report.violations.push_back(
          {ViolationKind::kCrash,
           std::string("incremental pipeline threw with jobs=") +
               std::to_string(jobs) + ": " + e.what()});
      return;
    }
    if (!refInc.has_value()) {
      refInc = std::move(incOut);
      refJobs = jobs;
      // The combined deployment must drop exactly what the combined
      // policies drop — infeasibility of the restricted subproblem is
      // acceptable (§IV-E), wrong semantics never.
      if (refInc->hasSolution()) {
        ++report.counters.semanticChecks;
        core::VerifyResult v =
            core::verifyPlacement(refInc->solvedProblem, refInc->placement,
                                  /*respectTraffic=*/mode.slice);
        if (!v.ok) {
          report.violations.push_back(
              {ViolationKind::kIncremental, v.summary()});
        }
      }
      continue;
    }
    ++report.counters.determinismComparisons;
    if (incOut.status != refInc->status) {
      report.violations.push_back(
          {ViolationKind::kDeterminism,
           "incremental status jobs=" + std::to_string(refJobs) + " -> " +
               describeOutcome(*refInc) + ", jobs=" + std::to_string(jobs) +
               " -> " + describeOutcome(incOut)});
      continue;
    }
    std::string why;
    if (incOut.hasSolution() &&
        !placementsEqual(refInc->placement, incOut.placement, &why)) {
      report.violations.push_back(
          {ViolationKind::kDeterminism,
           "incremental placement jobs=" + std::to_string(refJobs) +
               " vs jobs=" + std::to_string(jobs) + ": " + why});
    }
  }
}

/// Persistent-session differential (ViolationKind::kIncrementalSolver).
/// Three cross-checks over core::IncrementalSession:
///   * *one-shot equality* — installing every policy in ONE event from an
///     empty base is the unrestricted problem, so status must agree with a
///     from-scratch place() (merging off, like session deltas) and, when
///     both prove optimality, the objective must be identical;
///   * *replay determinism* — the chunked install sequence run twice must
///     produce bit-identical placements and statuses (clause reuse may
///     change the search, never the result of a replay);
///   * *semantics* — every committed session placement verifies exactly,
///     and a chunked session can only be infeasible-or-worse than scratch
///     (the pinned prefix is a restriction), never better.
void checkIncrementalSession(const FuzzCase& fc, const ModeConfig& mode,
                             const OracleOptions& options,
                             OracleReport& report) {
  const int n = static_cast<int>(fc.policies.size());
  const int m = mode.basePolicies;
  if (m <= 0 || m >= n) return;
  ++report.counters.incrementalSolverChecks;

  core::PlaceOptions opts = optionsFor(mode, options, /*jobs=*/1);
  opts.encoder.enableMerging = false;  // session deltas never merge

  struct SessionTrace {
    std::vector<solver::OptStatus> statuses;
    core::Placement placement;
    std::int64_t objective = 0;
    bool allSolved = true;
  };
  // `chunks` of (first, last) policy index ranges installed in order.
  auto runSession =
      [&](const std::vector<std::pair<int, int>>& chunks) -> SessionTrace {
    core::PlacementProblem empty;
    empty.graph = fc.graph.get();
    core::IncrementalSession session(empty, core::Placement{}, opts);
    SessionTrace trace;
    for (auto [first, last] : chunks) {
      std::vector<topo::IngressPaths> routing(fc.routing.begin() + first,
                                              fc.routing.begin() + last);
      std::vector<acl::Policy> policies(fc.policies.begin() + first,
                                        fc.policies.begin() + last);
      core::PlaceOutcome out = session.install(routing, policies);
      ++report.counters.solves;
      trace.statuses.push_back(out.status);
      trace.allSolved &= out.hasSolution();
      if (out.hasSolution()) {
        trace.objective = out.objective;
      } else {
        break;  // session rolled back; later chunks would shift policy ids
      }
    }
    trace.placement = session.placement();
    if (trace.allSolved) {
      ++report.counters.semanticChecks;
      core::VerifyResult v = core::verifyPlacement(
          session.problem(), session.placement(), /*respectTraffic=*/mode.slice);
      if (!v.ok) {
        report.violations.push_back(
            {ViolationKind::kIncrementalSolver,
             "session placement failed verification: " + v.summary()});
      }
    }
    return trace;
  };

  core::PlaceOutcome scratch;
  try {
    core::PlaceOptions scratchOpts = opts;
    scratch = core::place(fc.problem(), scratchOpts);
    ++report.counters.solves;

    const std::vector<std::pair<int, int>> chunked{{0, m}, {m, n}};
    SessionTrace a = runSession(chunked);
    SessionTrace b = runSession(chunked);
    ++report.counters.determinismComparisons;
    std::string why;
    if (a.statuses != b.statuses ||
        !placementsEqual(a.placement, b.placement, &why)) {
      report.violations.push_back(
          {ViolationKind::kIncrementalSolver,
           "session replay diverged: " + (why.empty() ? "statuses" : why)});
    }

    SessionTrace oneShot = runSession({{0, n}});
    const bool scratchDecided =
        scratch.status == solver::OptStatus::kOptimal ||
        scratch.status == solver::OptStatus::kInfeasible;
    if (scratchDecided && oneShot.statuses.size() == 1) {
      const solver::OptStatus ss = oneShot.statuses[0];
      if ((ss == solver::OptStatus::kOptimal ||
           ss == solver::OptStatus::kInfeasible) &&
          ss != scratch.status) {
        report.violations.push_back(
            {ViolationKind::kIncrementalSolver,
             std::string("one-shot session says ") + solver::toString(ss) +
                 " but scratch place() says " +
                 solver::toString(scratch.status)});
      }
      if (ss == solver::OptStatus::kOptimal &&
          scratch.status == solver::OptStatus::kOptimal &&
          oneShot.objective != scratch.objective) {
        report.violations.push_back(
            {ViolationKind::kIncrementalSolver,
             "one-shot session objective " + std::to_string(oneShot.objective) +
                 " != scratch optimum " + std::to_string(scratch.objective)});
      }
    }

    // Restriction direction: a chunked session that proves optimality can
    // never beat the scratch optimum, and its success implies scratch
    // feasibility.
    if (a.allSolved && a.statuses.back() == solver::OptStatus::kOptimal) {
      if (scratch.status == solver::OptStatus::kInfeasible) {
        report.violations.push_back(
            {ViolationKind::kIncrementalSolver,
             "chunked session solved an instance scratch proves infeasible"});
      } else if (scratch.status == solver::OptStatus::kOptimal &&
                 a.placement.totalInstalledRules() <
                     scratch.placement.totalInstalledRules() &&
                 mode.objective == core::ObjectiveKind::kTotalRules) {
        report.violations.push_back(
            {ViolationKind::kIncrementalSolver,
             "chunked session installed fewer rules than the scratch "
             "optimum: " +
                 std::to_string(a.placement.totalInstalledRules()) + " < " +
                 std::to_string(scratch.placement.totalInstalledRules())});
      }
    }
  } catch (const std::exception& e) {
    report.violations.push_back(
        {ViolationKind::kCrash,
         std::string("incremental session threw: ") + e.what()});
  }
}

/// Every dependency-graph builder — naive reference, indexed, and indexed
/// over two worker threads — must produce bit-identical drop lists and
/// shield sets for every policy (the tentpole determinism contract; see
/// docs/depgraph.md).  Graphs are built directly, bypassing the cache, so
/// the check cannot be masked by a cached result.
void checkDepGraphEquivalence(const FuzzCase& fc, OracleReport& report) {
  for (std::size_t p = 0; p < fc.policies.size(); ++p) {
    const acl::Policy& policy = fc.policies[p];
    depgraph::BuildOptions naive;
    naive.builder = depgraph::BuilderKind::kNaive;
    naive.cache = false;
    depgraph::BuildOptions indexed = naive;
    indexed.builder = depgraph::BuilderKind::kIndexed;
    depgraph::BuildOptions parallel = indexed;
    parallel.threads = 2;

    const depgraph::DependencyGraph ref(policy, naive);
    ++report.counters.depgraphChecks;
    const auto compare = [&](const depgraph::DependencyGraph& got,
                             const char* name) {
      if (got.dropRules() != ref.dropRules()) {
        report.violations.push_back(
            {ViolationKind::kDepgraph,
             std::string(name) + " builder: drop list differs on policy " +
                 std::to_string(p)});
        return;
      }
      for (int dropId : ref.dropRules()) {
        if (!std::ranges::equal(got.shieldsOf(dropId),
                                ref.shieldsOf(dropId))) {
          report.violations.push_back(
              {ViolationKind::kDepgraph,
               std::string(name) + " builder: shields of drop rule " +
                   std::to_string(dropId) + " differ on policy " +
                   std::to_string(p)});
          return;
        }
      }
    };
    compare(depgraph::DependencyGraph(policy, indexed), "indexed");
    compare(depgraph::DependencyGraph(policy, parallel), "parallel");
  }
}

}  // namespace

OracleReport checkCase(const FuzzCase& fc, const ModeConfig& mode,
                       const OracleOptions& options) {
  OracleReport report;
  if (options.jobsSweep.empty()) {
    report.violations.push_back(
        {ViolationKind::kCrash, "empty jobs sweep"});
    return report;
  }

  checkDepGraphEquivalence(fc, report);

  if (mode.incremental()) {
    checkIncremental(fc, mode, options, report);
    checkIncrementalSession(fc, mode, options, report);
    return report;
  }

  std::optional<core::PlaceOutcome> ref =
      sweepAndCompare(fc, mode, options, report);
  if (!ref.has_value()) return report;

  checkSemantics(*ref, mode, ViolationKind::kSemantics, report);
  checkDegradedInvariants(*ref, mode, report);
  checkBruteForce(fc, mode, options, *ref, report);
  checkStatusAgreement(fc, mode, options, *ref, report);
  return report;
}

}  // namespace ruleplace::fuzz
