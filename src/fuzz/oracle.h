#pragma once
// Differential oracle: runs one fuzz case through the full placement
// pipeline in a given mode and cross-checks the outcome three ways (the
// paper's exactness claim, §IV / §V, made mechanical):
//
//   1. *Semantics* — core::verifyPlacement proves the deployed drop sets
//      equal the per-ingress policies' drop sets on every path (cube
//      algebra, exact).
//   2. *Optimality* — on instances whose encoded model is small enough,
//      solver::bruteForceSolve enumerates every assignment; the pipeline
//      must agree on feasibility and (for ILP modes) on the optimum.
//   3. *Determinism* — placements, objectives and statuses must be
//      bit-identical across --jobs 1/2/4, and the incremental pipeline
//      (place a base, install the rest on spare capacity) must itself be
//      deterministic and semantics-preserving.
//   4. *Degradation* — a ladder-produced (sat-only / greedy) placement must
//      still pass exact verification, and a partial result must never keep
//      entries belonging to a failed component while every successful
//      component's subset verifies (see docs/robustness.md).
//
// All solves run under a conflict budget (never wall-clock) so results are
// reproducible across machines and thread counts.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/placer.h"
#include "fuzz/generator.h"

namespace ruleplace::fuzz {

/// One pipeline configuration to drive a case through.
struct ModeConfig {
  bool merge = false;             ///< §IV-B cross-policy merging
  bool slice = false;             ///< §IV-C path-sliced policies
  bool satOnly = false;           ///< §IV-D satisfiability mode
  bool removeRedundancy = false;  ///< complete redundancy removal first
  core::ObjectiveKind objective = core::ObjectiveKind::kTotalRules;
  /// > 0: incremental pipeline — place policies [0, basePolicies) as the
  /// running deployment, then install the rest on its spare capacity.
  int basePolicies = 0;
  bool ladder = false;   ///< graceful-degradation ladder (docs/robustness.md)
  bool partial = false;  ///< return verified partial results on failure
  /// >= 0: override OracleOptions::conflictBudget for this mode.  0 makes
  /// every exact solve fail immediately, forcing the ladder to its floor —
  /// the deterministic way to fuzz degraded placements.
  std::int64_t conflictBudget = -1;
  /// Race diversified solver configurations per component
  /// (PlaceOptions::portfolio).  The jobs sweep must still be bit-identical
  /// — the race's priority arbitration, not wall-clock, picks the winner.
  bool portfolio = false;

  bool incremental() const noexcept { return basePolicies > 0; }

  /// "merge=0 slice=1 sat-only=0 redundancy=0 objective=total-rules base=0"
  /// — the format reproducer headers embed.  The resilience fields (ladder,
  /// partial, conflicts) are appended only when non-default, so older
  /// reproducers keep parsing and keep their recorded headers byte-stable.
  std::string toString() const;
  static std::optional<ModeConfig> parse(std::string_view text);
};

/// Every mode applicable to this case (slicing only with traffic
/// descriptors, incremental only with >= 2 policies, merging never with a
/// non-total-rules objective).  Deterministic order; the plain ILP mode is
/// always first.
std::vector<ModeConfig> modeMatrix(const FuzzCase& fc);

enum class ViolationKind : std::uint8_t {
  kSemantics,    ///< verifyPlacement rejected a "solved" placement
  kOptimality,   ///< disagrees with brute-force enumeration
  kDeterminism,  ///< result changed with the thread count
  kStatus,       ///< ILP and SAT modes disagree on feasibility
  kIncremental,  ///< incremental deployment broke semantics
  kIncrementalSolver,  ///< persistent-session solving diverged from scratch
  kDepgraph,     ///< dependency-graph builders disagree
  kDegraded,     ///< ladder/partial outcome broke the degradation contract
  kCrash,        ///< pipeline threw
};

const char* toString(ViolationKind k);

struct Violation {
  ViolationKind kind;
  std::string message;
};

struct OracleCounters {
  std::int64_t solves = 0;
  std::int64_t semanticChecks = 0;
  std::int64_t bruteChecks = 0;
  std::int64_t determinismComparisons = 0;
  std::int64_t statusCrossChecks = 0;
  std::int64_t incrementalChecks = 0;
  std::int64_t incrementalSolverChecks = 0;
  std::int64_t depgraphChecks = 0;
  std::int64_t degradedChecks = 0;

  void add(const OracleCounters& o);
};

/// Test-only instrumentation: afterPlace may corrupt an outcome to emulate
/// a placer bug (see fuzz/mutator.h) — mutation testing for the oracle.
struct Hooks {
  std::function<void(core::PlaceOutcome&, const ModeConfig&, int jobs)>
      afterPlace;
};

struct OracleOptions {
  std::vector<int> jobsSweep{1, 2, 4};
  /// Deterministic per-solve budget (conflicts, not seconds).
  std::int64_t conflictBudget = 500000;
  /// Enumerate models up to this many variables (2^n assignments).
  int bruteMaxVars = 18;
  Hooks hooks;
};

struct OracleReport {
  std::vector<Violation> violations;
  OracleCounters counters;

  bool ok() const noexcept { return violations.empty(); }
  std::string summary() const;
};

/// The exact PlaceOptions the oracle drives a (mode, jobs) run with —
/// exposed so reproducer stage stats come from the same configuration the
/// failure was observed under.
core::PlaceOptions optionsFor(const ModeConfig& mode,
                              const OracleOptions& oracle, int jobs);

/// Drive `fc` through `mode` and return every violation found.
OracleReport checkCase(const FuzzCase& fc, const ModeConfig& mode,
                       const OracleOptions& options = {});

/// Field-by-field table comparison.  On mismatch, `why` (if non-null)
/// receives a human-readable first difference.
bool placementsEqual(const core::Placement& a, const core::Placement& b,
                     std::string* why = nullptr);

}  // namespace ruleplace::fuzz
