#include "fuzz/mutator.h"

#include <algorithm>

namespace ruleplace::fuzz {

const char* toString(BugKind k) {
  switch (k) {
    case BugKind::kDropInstalledRule: return "drop-installed-rule";
    case BugKind::kFlipAction: return "flip-action";
    case BugKind::kStripTag: return "strip-tag";
    case BugKind::kInflateObjective: return "inflate-objective";
    case BugKind::kComponentTimeout: return "component-timeout";
    case BugKind::kComponentThrow: return "component-throw";
  }
  return "?";
}

namespace {

// Clone one random rule of policy `from` into policy `to` at the bottom of
// its priority order — manufactures cross-policy merge groups.
bool cloneRuleAcross(FuzzCase& fc, util::Rng& rng) {
  if (fc.policies.size() < 2) return false;
  std::size_t from = static_cast<std::size_t>(rng.below(fc.policies.size()));
  std::size_t to = static_cast<std::size_t>(rng.below(fc.policies.size()));
  if (from == to || fc.policies[from].empty()) return false;
  const auto& rules = fc.policies[from].rules();
  const acl::Rule& r =
      rules[static_cast<std::size_t>(rng.below(rules.size()))];
  fc.policies[to].addRule(r.matchField, r.action);
  return true;
}

bool dropRule(FuzzCase& fc, util::Rng& rng) {
  std::size_t p = static_cast<std::size_t>(rng.below(fc.policies.size()));
  if (fc.policies[p].size() < 2) return false;
  const auto& rules = fc.policies[p].rules();
  int id = rules[static_cast<std::size_t>(rng.below(rules.size()))].id;
  return fc.policies[p].removeRule(id);
}

bool dropPath(FuzzCase& fc, util::Rng& rng) {
  std::size_t i = static_cast<std::size_t>(rng.below(fc.routing.size()));
  auto& paths = fc.routing[i].paths;
  if (paths.size() < 2) return false;
  paths.erase(paths.begin() +
              static_cast<std::ptrdiff_t>(rng.below(paths.size())));
  return true;
}

bool tweakCapacity(FuzzCase& fc, util::Rng& rng) {
  // The graph is shared with the original case, so copy-on-write here.
  auto fresh = std::make_shared<topo::Graph>(*fc.graph);
  fc.graph = std::move(fresh);
  topo::Graph& g = *fc.graph;
  topo::SwitchId sw = static_cast<topo::SwitchId>(
      rng.below(static_cast<std::uint64_t>(g.switchCount())));
  int delta = static_cast<int>(rng.range(-2, 2));
  g.sw(sw).capacity = std::max(1, g.sw(sw).capacity + delta);
  return true;
}

// Remove-and-re-add random rules at their original priority: semantics are
// unchanged, but every re-add burns a fresh id (Policy::nextId_ only grows),
// so rule ids end up sparse and far above the policy size.  Exercises the
// id-keyed paths (DependencyGraph, Encoder) against non-dense ids.
bool churnRuleIds(FuzzCase& fc, util::Rng& rng) {
  std::size_t p = static_cast<std::size_t>(rng.below(fc.policies.size()));
  acl::Policy& q = fc.policies[p];
  if (q.empty()) return false;
  const int cycles = static_cast<int>(rng.range(4, 32));
  for (int c = 0; c < cycles; ++c) {
    const auto& rules = q.rules();
    const acl::Rule r =
        rules[static_cast<std::size_t>(rng.below(rules.size()))];
    q.removeRule(r.id);
    q.addRuleWithPriority(r.matchField, r.action, r.priority, r.dummy);
  }
  return true;
}

bool widenRuleBit(FuzzCase& fc, util::Rng& rng) {
  std::size_t p = static_cast<std::size_t>(rng.below(fc.policies.size()));
  acl::Policy& q = fc.policies[p];
  if (q.empty()) return false;
  const auto& rules = q.rules();
  std::size_t ri = static_cast<std::size_t>(rng.below(rules.size()));
  match::Ternary cube = rules[ri].matchField;
  int bit = static_cast<int>(rng.below(static_cast<std::uint64_t>(cube.width())));
  if (cube.bit(bit) < 0) return false;  // already wildcard
  cube.setBit(bit, -1);
  acl::Action action = rules[ri].action;
  q.removeRule(rules[ri].id);
  q.addRule(cube, action);
  return true;
}

bool tagged(const core::InstalledRule& entry, const std::vector<int>& ids) {
  for (int tag : entry.tags) {
    if (std::find(ids.begin(), ids.end(), tag) != ids.end()) return true;
  }
  return false;
}

bool hasEntryOf(const core::Placement& placement,
                const std::vector<int>& ids) {
  for (int sw = 0; sw < placement.switchCount(); ++sw) {
    for (const auto& entry : placement.table(sw)) {
      if (tagged(entry, ids)) return true;
    }
  }
  return false;
}

void erasePolicies(core::Placement& placement, const std::vector<int>& ids) {
  for (int sw = 0; sw < placement.switchCount(); ++sw) {
    auto& table = placement.mutableTable(sw);
    table.erase(std::remove_if(table.begin(), table.end(),
                               [&](const core::InstalledRule& e) {
                                 return tagged(e, ids);
                               }),
                table.end());
  }
}

void markComponentFailed(core::PlaceOutcome& outcome,
                         core::ComponentSolveStats& comp,
                         const char* message) {
  core::FailureInfo f;
  f.status = solver::OptStatus::kUnknown;
  f.stage = core::SolveStage::kSolve;
  f.elapsedSeconds = 0.0;
  f.message = message;
  comp.status = solver::OptStatus::kUnknown;
  comp.failure = f;
  outcome.status = solver::OptStatus::kUnknown;
  outcome.partial = true;
  outcome.failedComponents += 1;
  outcome.failure = std::move(f);
}

}  // namespace

FuzzCase mutateCase(const FuzzCase& original, util::Rng& rng) {
  FuzzCase fc = original;  // graph shared until a mutation needs to write it
  int applied = 0;
  const int wanted = static_cast<int>(rng.range(1, 3));
  for (int attempt = 0; attempt < 16 && applied < wanted; ++attempt) {
    bool ok = false;
    switch (rng.below(6)) {
      case 0: ok = dropRule(fc, rng); break;
      case 1: ok = cloneRuleAcross(fc, rng); break;
      case 2: ok = dropPath(fc, rng); break;
      case 3: ok = tweakCapacity(fc, rng); break;
      case 4: ok = churnRuleIds(fc, rng); break;
      default: ok = widenRuleBit(fc, rng); break;
    }
    if (ok) ++applied;
  }
  fc.problem().validate();
  return fc;
}

bool injectBug(core::PlaceOutcome& outcome, BugKind kind) {
  if (!outcome.hasSolution()) return false;
  core::Placement& placement = outcome.placement;
  switch (kind) {
    case BugKind::kDropInstalledRule:
      for (int sw = 0; sw < placement.switchCount(); ++sw) {
        auto& table = placement.mutableTable(sw);
        for (std::size_t i = 0; i < table.size(); ++i) {
          if (table[i].action == acl::Action::kDrop) {
            table.erase(table.begin() + static_cast<std::ptrdiff_t>(i));
            return true;
          }
        }
      }
      return false;
    case BugKind::kFlipAction:
      for (int sw = 0; sw < placement.switchCount(); ++sw) {
        auto& table = placement.mutableTable(sw);
        if (!table.empty()) {
          auto& entry = table.front();
          entry.action = entry.action == acl::Action::kDrop
                             ? acl::Action::kPermit
                             : acl::Action::kDrop;
          return true;
        }
      }
      return false;
    case BugKind::kStripTag:
      for (int sw = 0; sw < placement.switchCount(); ++sw) {
        for (auto& entry : placement.mutableTable(sw)) {
          if (entry.tags.size() > 1) {
            entry.tags.pop_back();
            return true;
          }
        }
      }
      return false;
    case BugKind::kInflateObjective:
      outcome.objective += 1;
      return true;
    case BugKind::kComponentTimeout: {
      // Claim the first component timed out but leave its entries in
      // place: a partial result that leaks a failed component's rules.
      if (outcome.componentStats.empty()) return false;
      core::ComponentSolveStats& comp = outcome.componentStats.front();
      if (!hasEntryOf(placement, comp.policyIds)) return false;
      markComponentFailed(outcome, comp, "injected: component timeout");
      return true;
    }
    case BugKind::kComponentThrow: {
      // Claim the first component threw (its entries are honestly dropped)
      // while also losing the last component's entries — whose stats still
      // claim success, so the partial subset no longer verifies.
      if (outcome.componentStats.size() < 2) return false;
      core::ComponentSolveStats& comp = outcome.componentStats.front();
      const core::ComponentSolveStats& victim = outcome.componentStats.back();
      if (!hasEntryOf(placement, victim.policyIds)) return false;
      erasePolicies(placement, comp.policyIds);
      erasePolicies(placement, victim.policyIds);
      markComponentFailed(outcome, comp,
                          "injected: component throw: std::runtime_error");
      return true;
    }
  }
  return false;
}

}  // namespace ruleplace::fuzz
