#include "fuzz/minimizer.h"

#include <algorithm>
#include <sstream>

namespace ruleplace::fuzz {

namespace {

int countRules(const FuzzCase& fc) {
  int n = 0;
  for (const auto& q : fc.policies) n += static_cast<int>(q.size());
  return n;
}

int countPaths(const FuzzCase& fc) {
  int n = 0;
  for (const auto& ip : fc.routing) n += static_cast<int>(ip.paths.size());
  return n;
}

struct Budgeted {
  const FailurePredicate& fails;
  int remaining;
  int used = 0;

  /// True when the candidate is valid and still failing.
  bool stillFails(const FuzzCase& candidate) {
    if (remaining <= 0) return false;
    --remaining;
    ++used;
    try {
      candidate.problem().validate();
    } catch (const std::exception&) {
      return false;  // over-aggressive reduction; discard the candidate
    }
    try {
      return fails(candidate);
    } catch (const std::exception&) {
      // A predicate that crashes on the candidate still reproduces a
      // defect, but not necessarily *the* defect; be conservative.
      return false;
    }
  }
};

bool dropPoliciesPass(FuzzCase& best, Budgeted& b) {
  bool reduced = false;
  for (std::size_t i = best.policies.size(); i-- > 0;) {
    if (best.policies.size() < 2) break;
    FuzzCase candidate = best;
    candidate.policies.erase(candidate.policies.begin() +
                             static_cast<std::ptrdiff_t>(i));
    candidate.routing.erase(candidate.routing.begin() +
                            static_cast<std::ptrdiff_t>(i));
    if (b.stillFails(candidate)) {
      best = std::move(candidate);
      reduced = true;
    }
  }
  return reduced;
}

bool dropPathsPass(FuzzCase& best, Budgeted& b) {
  bool reduced = false;
  for (std::size_t i = 0; i < best.routing.size(); ++i) {
    for (std::size_t j = best.routing[i].paths.size(); j-- > 0;) {
      if (best.routing[i].paths.size() < 2) break;
      FuzzCase candidate = best;
      auto& paths = candidate.routing[i].paths;
      paths.erase(paths.begin() + static_cast<std::ptrdiff_t>(j));
      if (b.stillFails(candidate)) {
        best = std::move(candidate);
        reduced = true;
      }
    }
  }
  return reduced;
}

// Remove a contiguous chunk of rule ids from one policy.
FuzzCase withoutRules(const FuzzCase& fc, std::size_t policy,
                      const std::vector<int>& ids, std::size_t from,
                      std::size_t count) {
  FuzzCase candidate = fc;
  for (std::size_t k = from; k < from + count && k < ids.size(); ++k) {
    candidate.policies[policy].removeRule(ids[k]);
  }
  return candidate;
}

bool dropRulesPass(FuzzCase& best, Budgeted& b) {
  bool reduced = false;
  for (std::size_t p = 0; p < best.policies.size(); ++p) {
    // ddmin-style: halves, then quarters, ... then singles.
    for (std::size_t chunk = std::max<std::size_t>(best.policies[p].size() / 2, 1);; chunk /= 2) {
      bool chunkReduced = true;
      while (chunkReduced) {
        chunkReduced = false;
        std::vector<int> ids;
        for (const auto& r : best.policies[p].rules()) ids.push_back(r.id);
        if (ids.size() < 2) break;
        for (std::size_t from = 0; from < ids.size(); from += chunk) {
          std::size_t count = std::min(chunk, ids.size() - from);
          if (count >= ids.size()) continue;  // keep >= 1 rule
          FuzzCase candidate = withoutRules(best, p, ids, from, count);
          if (b.stillFails(candidate)) {
            best = std::move(candidate);
            chunkReduced = true;
            reduced = true;
            break;  // ids changed; rebuild and rescan this chunk size
          }
        }
      }
      if (chunk == 1) break;
    }
  }
  return reduced;
}

bool dropSwitchesPass(FuzzCase& best, Budgeted& b) {
  FuzzCase candidate = dropUnusedSwitches(best);
  if (candidate.graph->switchCount() >= best.graph->switchCount()) {
    return false;
  }
  if (b.stillFails(candidate)) {
    best = std::move(candidate);
    return true;
  }
  return false;
}

}  // namespace

FuzzCase dropUnusedSwitches(const FuzzCase& fc) {
  const topo::Graph& g = *fc.graph;
  std::vector<bool> keepSwitch(static_cast<std::size_t>(g.switchCount()),
                               false);
  std::vector<bool> keepPort(static_cast<std::size_t>(g.entryPortCount()),
                             false);
  for (const auto& ip : fc.routing) {
    keepPort[static_cast<std::size_t>(ip.ingress)] = true;
    for (const auto& path : ip.paths) {
      keepPort[static_cast<std::size_t>(path.ingress)] = true;
      keepPort[static_cast<std::size_t>(path.egress)] = true;
      for (topo::SwitchId sw : path.switches) {
        keepSwitch[static_cast<std::size_t>(sw)] = true;
      }
    }
  }
  // Kept ports must keep their attachment switch.
  for (int p = 0; p < g.entryPortCount(); ++p) {
    if (keepPort[static_cast<std::size_t>(p)]) {
      keepSwitch[static_cast<std::size_t>(g.entryPort(p).attachedSwitch)] =
          true;
    }
  }

  std::vector<int> switchMap(static_cast<std::size_t>(g.switchCount()), -1);
  std::vector<int> portMap(static_cast<std::size_t>(g.entryPortCount()), -1);
  FuzzCase out;
  out.graph = std::make_shared<topo::Graph>();
  for (int sw = 0; sw < g.switchCount(); ++sw) {
    if (!keepSwitch[static_cast<std::size_t>(sw)]) continue;
    switchMap[static_cast<std::size_t>(sw)] = out.graph->addSwitch(
        g.sw(sw).capacity, g.sw(sw).role, g.sw(sw).name);
  }
  for (int a = 0; a < g.switchCount(); ++a) {
    if (switchMap[static_cast<std::size_t>(a)] < 0) continue;
    for (topo::SwitchId nb : g.neighbors(a)) {
      if (nb > a && switchMap[static_cast<std::size_t>(nb)] >= 0) {
        out.graph->addLink(switchMap[static_cast<std::size_t>(a)],
                           switchMap[static_cast<std::size_t>(nb)]);
      }
    }
  }
  for (int p = 0; p < g.entryPortCount(); ++p) {
    if (!keepPort[static_cast<std::size_t>(p)]) continue;
    portMap[static_cast<std::size_t>(p)] = out.graph->addEntryPort(
        switchMap[static_cast<std::size_t>(g.entryPort(p).attachedSwitch)],
        g.entryPort(p).name);
  }

  out.policies = fc.policies;
  for (const auto& ip : fc.routing) {
    topo::IngressPaths mapped;
    mapped.ingress = portMap[static_cast<std::size_t>(ip.ingress)];
    for (const auto& path : ip.paths) {
      topo::Path mp;
      mp.ingress = portMap[static_cast<std::size_t>(path.ingress)];
      mp.egress = portMap[static_cast<std::size_t>(path.egress)];
      mp.traffic = path.traffic;
      for (topo::SwitchId sw : path.switches) {
        mp.switches.push_back(switchMap[static_cast<std::size_t>(sw)]);
      }
      mapped.paths.push_back(std::move(mp));
    }
    out.routing.push_back(std::move(mapped));
  }
  return out;
}

std::string MinimizeStats::toString() const {
  std::ostringstream os;
  os << "rules " << rulesBefore << "->" << rulesAfter << ", paths "
     << pathsBefore << "->" << pathsAfter << ", policies " << policiesBefore
     << "->" << policiesAfter << ", switches " << switchesBefore << "->"
     << switchesAfter << " (" << evaluations << " evaluations)";
  return os.str();
}

FuzzCase minimizeCase(const FuzzCase& failing, const FailurePredicate& fails,
                      MinimizeStats* stats, int maxEvaluations) {
  FuzzCase best = failing;
  Budgeted b{fails, maxEvaluations};
  if (stats != nullptr) {
    stats->rulesBefore = countRules(best);
    stats->pathsBefore = countPaths(best);
    stats->policiesBefore = static_cast<int>(best.policies.size());
    stats->switchesBefore = best.graph->switchCount();
  }

  bool reduced = true;
  while (reduced && b.remaining > 0) {
    reduced = false;
    reduced |= dropPoliciesPass(best, b);
    reduced |= dropPathsPass(best, b);
    reduced |= dropRulesPass(best, b);
    reduced |= dropSwitchesPass(best, b);
  }

  if (stats != nullptr) {
    stats->rulesAfter = countRules(best);
    stats->pathsAfter = countPaths(best);
    stats->policiesAfter = static_cast<int>(best.policies.size());
    stats->switchesAfter = best.graph->switchCount();
    stats->evaluations = b.used;
  }
  return best;
}

}  // namespace ruleplace::fuzz
