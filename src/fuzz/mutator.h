#pragma once
// Case mutation, two ways:
//
//  * `mutateCase` perturbs a valid problem (drop/clone rules, tweak
//    capacities, drop paths) to explore the neighborhood of a generated
//    case — incremental re-placement bugs live exactly at such deltas.
//  * `injectBug` corrupts a *solved* PlaceOutcome to emulate a placer
//    defect.  The fuzz tests (and `ruleplace_fuzz --self-check`) wire it
//    through the oracle's afterPlace hook to prove the pipeline actually
//    catches and minimizes semantic / optimality / determinism violations —
//    mutation testing for the oracle itself.

#include <cstdint>

#include "core/placer.h"
#include "fuzz/generator.h"
#include "util/rng.h"

namespace ruleplace::fuzz {

/// One random, validity-preserving mutation (the case is returned ready to
/// solve; mutations that would empty a policy or strand a path are
/// skipped).  Deterministic in (case, rng state).
FuzzCase mutateCase(const FuzzCase& original, util::Rng& rng);

/// Placer-defect models for oracle mutation testing.
enum class BugKind : std::uint8_t {
  kDropInstalledRule,  ///< silently lose one installed DROP entry
  kFlipAction,         ///< flip an installed entry's action
  kStripTag,           ///< remove one policy tag from a merged entry
  kInflateObjective,   ///< report a worse objective than the placement
  /// Pretend the first component timed out but leak its entries into the
  /// "partial" placement — the degraded-invariant oracle must notice.
  kComponentTimeout,
  /// Pretend the first component threw while silently losing the last
  /// component's entries, though its stats still claim success.
  kComponentThrow,
};

const char* toString(BugKind k);

/// Apply `kind` to a solved outcome.  Returns false when the outcome has no
/// spot the bug applies to (e.g. no merged entry for kStripTag); the
/// outcome is unchanged then.  Deterministic: the corrupted entry is chosen
/// by fixed scan order, not randomness, so a reproducer stays a reproducer.
bool injectBug(core::PlaceOutcome& outcome, BugKind kind);

}  // namespace ruleplace::fuzz
