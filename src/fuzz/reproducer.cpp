#include "fuzz/reproducer.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "io/scenario.h"

namespace ruleplace::fuzz {

std::string formatReproducer(const FuzzCase& fc, const ModeConfig& mode,
                             std::uint64_t seed, const std::string& note) {
  std::ostringstream os;
  os << "# ruleplace-fuzz reproducer\n";
  os << "# seed " << seed << '\n';
  os << "# mode " << mode.toString() << '\n';
  if (!note.empty()) {
    // Notes may span lines; each becomes its own comment.
    std::istringstream lines(note);
    std::string line;
    while (std::getline(lines, line)) os << "# violation " << line << '\n';
  }
  os << io::formatScenario(fc.problem());
  return os.str();
}

void writeReproducer(const std::string& path, const FuzzCase& fc,
                     const ModeConfig& mode, std::uint64_t seed,
                     const std::string& note) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot write reproducer file: " + path);
  }
  out << formatReproducer(fc, mode, seed, note);
}

FuzzCase caseFromScenarioText(std::string_view text) {
  io::Scenario scenario;
  io::parseScenario(text, scenario);
  FuzzCase fc;
  fc.graph = std::make_shared<topo::Graph>(scenario.graph);
  fc.routing = std::move(scenario.routing);
  fc.policies = std::move(scenario.policies);
  return fc;
}

Reproducer parseReproducer(std::string_view text) {
  Reproducer repro;
  std::istringstream stream{std::string(text)};
  std::string line;
  while (std::getline(stream, line)) {
    if (line.rfind("# seed ", 0) == 0) {
      try {
        repro.seed = std::stoull(line.substr(7));
      } catch (...) {
        throw std::runtime_error("reproducer: malformed seed line: " + line);
      }
    } else if (line.rfind("# mode ", 0) == 0) {
      auto mode = ModeConfig::parse(line.substr(7));
      if (!mode.has_value()) {
        throw std::runtime_error("reproducer: malformed mode line: " + line);
      }
      repro.mode = *mode;
    } else if (line.rfind("# violation ", 0) == 0) {
      if (!repro.note.empty()) repro.note += '\n';
      repro.note += line.substr(12);
    }
  }
  repro.fuzzCase = caseFromScenarioText(text);
  return repro;
}

Reproducer loadReproducer(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open reproducer file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parseReproducer(buffer.str());
}

}  // namespace ruleplace::fuzz
