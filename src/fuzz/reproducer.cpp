#include "fuzz/reproducer.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "io/scenario.h"

namespace ruleplace::fuzz {

std::string stageStatsFor(const FuzzCase& fc, const ModeConfig& mode,
                          const OracleOptions& oracle) {
  // jobs=1: the re-solve is deterministic and does not race the global
  // observability registry when fuzz workers run concurrently.
  core::PlaceOutcome out;
  try {
    out = core::place(fc.problem(), optionsFor(mode, oracle, 1));
  } catch (const std::exception&) {
    return "crash=1";  // the violation header already carries the details
  }
  std::ostringstream os;
  char ms[32];
  std::snprintf(ms, sizeof(ms), "%.3f", out.encodeSeconds * 1e3);
  os << "encode_ms=" << ms;
  std::snprintf(ms, sizeof(ms), "%.3f", out.solveSeconds * 1e3);
  os << " solve_ms=" << ms;
  os << " status=" << solver::toString(out.status)
     << " components=" << out.componentStats.size()
     << " model_vars=" << out.modelVars
     << " model_cons=" << out.modelConstraints
     << " conflicts=" << out.solverStats.conflicts
     << " decisions=" << out.solverStats.decisions
     << " propagations=" << out.solverStats.propagations
     << " restarts=" << out.solverStats.restarts;
  return os.str();
}

std::string formatReproducer(const FuzzCase& fc, const ModeConfig& mode,
                             std::uint64_t seed, const std::string& note,
                             const std::string& stages) {
  std::ostringstream os;
  os << "# ruleplace-fuzz reproducer\n";
  os << "# seed " << seed << '\n';
  os << "# mode " << mode.toString() << '\n';
  if (!note.empty()) {
    // Notes may span lines; each becomes its own comment.
    std::istringstream lines(note);
    std::string line;
    while (std::getline(lines, line)) os << "# violation " << line << '\n';
  }
  if (!stages.empty()) os << "# stages " << stages << '\n';
  os << io::formatScenario(fc.problem());
  return os.str();
}

void writeReproducer(const std::string& path, const FuzzCase& fc,
                     const ModeConfig& mode, std::uint64_t seed,
                     const std::string& note, const std::string& stages) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot write reproducer file: " + path);
  }
  out << formatReproducer(fc, mode, seed, note, stages);
}

FuzzCase caseFromScenarioText(std::string_view text) {
  io::Scenario scenario;
  io::parseScenario(text, scenario);
  FuzzCase fc;
  fc.graph = std::make_shared<topo::Graph>(scenario.graph);
  fc.routing = std::move(scenario.routing);
  fc.policies = std::move(scenario.policies);
  return fc;
}

Reproducer parseReproducer(std::string_view text) {
  Reproducer repro;
  std::istringstream stream{std::string(text)};
  std::string line;
  while (std::getline(stream, line)) {
    if (line.rfind("# seed ", 0) == 0) {
      try {
        repro.seed = std::stoull(line.substr(7));
      } catch (...) {
        throw std::runtime_error("reproducer: malformed seed line: " + line);
      }
    } else if (line.rfind("# mode ", 0) == 0) {
      auto mode = ModeConfig::parse(line.substr(7));
      if (!mode.has_value()) {
        throw std::runtime_error("reproducer: malformed mode line: " + line);
      }
      repro.mode = *mode;
    } else if (line.rfind("# violation ", 0) == 0) {
      if (!repro.note.empty()) repro.note += '\n';
      repro.note += line.substr(12);
    } else if (line.rfind("# stages ", 0) == 0) {
      repro.stages = line.substr(9);
    }
  }
  repro.fuzzCase = caseFromScenarioText(text);
  return repro;
}

Reproducer loadReproducer(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open reproducer file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parseReproducer(buffer.str());
}

}  // namespace ruleplace::fuzz
