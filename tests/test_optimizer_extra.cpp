// Additional optimizer/solver coverage: constraint lowering shapes, the
// solution polisher's behavior on merge-like structures, lower-bound
// early stopping, and budget semantics.

#include <gtest/gtest.h>

#include "solver/bruteforce.h"
#include "solver/optimize.h"
#include "solver/sat.h"
#include "util/rng.h"

namespace ruleplace::solver {
namespace {

TEST(Lowering, GeConstraintWithNegativeCoeffs) {
  // x - y >= 0 (implication y -> x).
  Model m;
  ModelVar x = m.addBinary();
  ModelVar y = m.addBinary();
  LinearExpr e;
  e.add(1, x).add(-1, y);
  m.addConstraint(e, Cmp::kGe, 0);
  LinearExpr fix;
  fix.add(1, y);
  m.addConstraint(fix, Cmp::kGe, 1);
  auto r = Optimizer::solveSat(m);
  ASSERT_TRUE(r.hasSolution());
  EXPECT_TRUE(r.assignment[static_cast<std::size_t>(x)]);
}

TEST(Lowering, ConstantInExpressionFoldsIntoRhs) {
  // (x + 3) <= 3  =>  x = 0.
  Model m;
  ModelVar x = m.addBinary();
  LinearExpr e;
  e.add(1, x).addConstant(3);
  m.addConstraint(e, Cmp::kLe, 3);
  auto r = Optimizer::solveSat(m);
  ASSERT_TRUE(r.hasSolution());
  EXPECT_FALSE(r.assignment[static_cast<std::size_t>(x)]);
}

TEST(Lowering, InfeasibleEqualityDetectedAtRoot) {
  // x + y == 3 over binaries: impossible.
  Model m;
  ModelVar x = m.addBinary();
  ModelVar y = m.addBinary();
  LinearExpr e;
  e.add(1, x).add(1, y);
  m.addConstraint(e, Cmp::kEq, 3);
  EXPECT_EQ(Optimizer::solveSat(m).status, OptStatus::kInfeasible);
}

// Merge-gadget: two "member" variables m1, m2 that each must be 1 (cover),
// and a shared variable s with objective -1 that may be 1 only when both
// members are 1 — the paper's Eq. 4/5 in miniature.  The optimizer must
// turn s on.
TEST(Polisher, CompletesMergeGadget) {
  Model m;
  ModelVar m1 = m.addBinary("m1");
  ModelVar m2 = m.addBinary("m2");
  ModelVar s = m.addBinary("s");
  LinearExpr c1;
  c1.add(1, m1);
  m.addConstraint(c1, Cmp::kGe, 1);
  LinearExpr c2;
  c2.add(1, m2);
  m.addConstraint(c2, Cmp::kGe, 1);
  // s <= m1, s <= m2 ; m1 + m2 - s <= 1 (s forced when both on).
  LinearExpr e1;
  e1.add(1, s).add(-1, m1);
  m.addConstraint(e1, Cmp::kLe, 0);
  LinearExpr e2;
  e2.add(1, s).add(-1, m2);
  m.addConstraint(e2, Cmp::kLe, 0);
  LinearExpr link;
  link.add(1, m1).add(1, m2).add(-1, s);
  m.addConstraint(link, Cmp::kLe, 1);
  LinearExpr obj;
  obj.add(1, m1).add(1, m2).add(-1, s);
  m.setObjective(obj);
  auto r = Optimizer::solve(m);
  ASSERT_EQ(r.status, OptStatus::kOptimal);
  EXPECT_EQ(r.objective, 1);
  EXPECT_TRUE(r.assignment[static_cast<std::size_t>(s)]);
}

TEST(LowerBound, EarlyStopDeclaresOptimal) {
  // Disjoint cover: 20 variables, 10 cover constraints over pairs.
  // Without the bound, proving obj <= 9 unsat is pigeonhole-hard for
  // clause learning; with bound 10 declared, the first incumbent at 10 is
  // recognized optimal with (near) zero conflicts.
  Model m;
  std::vector<ModelVar> vars;
  for (int i = 0; i < 20; ++i) vars.push_back(m.addBinary());
  LinearExpr obj;
  for (ModelVar v : vars) obj.add(1, v);
  for (int i = 0; i < 10; ++i) {
    LinearExpr cover;
    cover.add(1, vars[static_cast<std::size_t>(2 * i)]);
    cover.add(1, vars[static_cast<std::size_t>(2 * i + 1)]);
    m.addConstraint(cover, Cmp::kGe, 1);
  }
  m.setObjective(obj);
  m.setObjectiveLowerBound(10);
  auto r = Optimizer::solve(m, Budget::seconds(5));
  EXPECT_EQ(r.status, OptStatus::kOptimal);
  EXPECT_EQ(r.objective, 10);
}

TEST(LowerBound, ExactBoundStopsAtOptimum) {
  // A bound equal to the true optimum: the first polished incumbent that
  // attains it is declared optimal without any UNSAT proof.
  Model m;
  ModelVar x = m.addBinary();
  ModelVar y = m.addBinary();
  LinearExpr cover;
  cover.add(1, x).add(1, y);
  m.addConstraint(cover, Cmp::kGe, 1);
  LinearExpr obj;
  obj.add(1, x).add(2, y);
  m.setObjective(obj);
  m.setObjectiveLowerBound(1);  // optimum: x=1, y=0
  auto r = Optimizer::solve(m);
  ASSERT_EQ(r.status, OptStatus::kOptimal);
  EXPECT_EQ(r.objective, 1);
  EXPECT_TRUE(r.assignment[0]);
  EXPECT_FALSE(r.assignment[1]);
}

TEST(Budget, ZeroSecondsReturnsUnknownOrFeasible) {
  Model m;
  std::vector<ModelVar> vars;
  for (int i = 0; i < 12; ++i) vars.push_back(m.addBinary());
  LinearExpr any;
  for (ModelVar v : vars) any.add(1, v);
  m.addConstraint(any, Cmp::kGe, 6);
  LinearExpr obj = any;
  m.setObjective(obj);
  auto r = Optimizer::solve(m, Budget::seconds(0.0));
  EXPECT_TRUE(r.status == OptStatus::kUnknown ||
              r.status == OptStatus::kFeasible);
}

TEST(Stats, ConflictsAccumulateAcrossSolves) {
  Solver s;
  Var a = s.newVar();
  Var b = s.newVar();
  Var c = s.newVar();
  s.addClause({Lit(a, false), Lit(b, false)});
  s.addClause({Lit(a, false), Lit(b, true)});
  s.addClause({Lit(a, true), Lit(c, false)});
  s.addClause({Lit(a, true), Lit(c, true)});
  EXPECT_EQ(s.solve(), SolveStatus::kUnsat);
  EXPECT_GE(s.stats().conflicts, 1);
  EXPECT_GE(s.stats().decisions, 0);
}

TEST(Hint, PolarityHintSteersFirstModel) {
  Model m;
  ModelVar x = m.addBinary();
  ModelVar y = m.addBinary();
  LinearExpr e;
  e.add(1, x).add(1, y);
  m.addConstraint(e, Cmp::kGe, 1);
  // No objective: the first model stands.  Hint x=true.
  auto r = Optimizer::solveWithHint(m, {{x, true}});
  ASSERT_TRUE(r.hasSolution());
  EXPECT_TRUE(r.assignment[static_cast<std::size_t>(x)]);
}

// Larger randomized stress: optimizer vs brute force with tighter models
// (equalities + wide covers), 14 vars.
class StressCrossCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressCrossCheck, MatchesBruteForce) {
  util::Rng rng(GetParam() * 13 + 5);
  for (int round = 0; round < 6; ++round) {
    Model m;
    const int n = 14;
    std::vector<ModelVar> vars;
    for (int i = 0; i < n; ++i) vars.push_back(m.addBinary());
    int nCons = static_cast<int>(rng.range(3, 9));
    for (int c = 0; c < nCons; ++c) {
      LinearExpr e;
      int terms = static_cast<int>(rng.range(2, 6));
      for (int t = 0; t < terms; ++t) {
        e.add(rng.range(-2, 3), vars[rng.below(n)]);
      }
      m.addConstraint(std::move(e), static_cast<Cmp>(rng.below(3)),
                      rng.range(-1, 3));
    }
    LinearExpr obj;
    for (int i = 0; i < n; ++i) {
      obj.add(rng.range(-2, 4), vars[static_cast<std::size_t>(i)]);
    }
    m.setObjective(obj);
    OptResult exact = bruteForceSolve(m);
    OptResult got = Optimizer::solve(m);
    ASSERT_EQ(got.status, exact.status);
    if (exact.status == OptStatus::kOptimal) {
      EXPECT_EQ(got.objective, exact.objective);
      EXPECT_TRUE(m.feasible(got.assignment));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressCrossCheck,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace ruleplace::solver
