// Tests for the packet-level dataplane simulator, including differential
// fuzzing of solver-produced deployments against the policy oracle.

#include <gtest/gtest.h>

#include "core/instance.h"
#include "core/placer.h"
#include "sim/dataplane.h"

namespace ruleplace::sim {
namespace {

using acl::Action;
using match::Ternary;

Ternary T(const char* s) { return Ternary::fromString(s); }

struct LineNet {
  topo::Graph graph;
  core::PlacementProblem problem;
  topo::SwitchId s0, s1;

  LineNet() {
    s0 = graph.addSwitch(10);
    s1 = graph.addSwitch(10);
    graph.addLink(s0, s1);
    topo::PortId in = graph.addEntryPort(s0);
    topo::PortId out = graph.addEntryPort(s1);
    acl::Policy q;
    q.addRule(T("1010"), Action::kPermit);
    q.addRule(T("10**"), Action::kDrop);
    problem.graph = &graph;
    problem.routing = {{in, {{in, out, {s0, s1}, std::nullopt}}}};
    problem.policies = {std::move(q)};
  }
};

TEST(Dataplane, TraceShowsDecidingHop) {
  LineNet net;
  const auto& rules = net.problem.policies[0].rules();
  core::Placement pl = core::buildPlacement(
      net.problem, {{0, rules[0].id, net.s1}, {0, rules[1].id, net.s1}});
  Dataplane dp(net.problem, pl);

  TraceResult dropped = dp.inject(0, 0, T("1000"));
  EXPECT_EQ(dropped.verdict, Verdict::kDropped);
  EXPECT_EQ(dropped.droppedAt, net.s1);
  ASSERT_EQ(dropped.hops.size(), 2u);
  EXPECT_EQ(dropped.hops[0].matchedEntry, -1);  // s0 empty: pass
  EXPECT_EQ(dropped.hops[1].action, Action::kDrop);

  TraceResult shielded = dp.inject(0, 0, T("1010"));
  EXPECT_EQ(shielded.verdict, Verdict::kDelivered);
  EXPECT_EQ(shielded.hops[1].action, Action::kPermit);

  TraceResult unmatched = dp.inject(0, 0, T("0111"));
  EXPECT_EQ(unmatched.verdict, Verdict::kDelivered);
  EXPECT_EQ(unmatched.hops[1].matchedEntry, -1);

  std::string text = dropped.toString(net.graph);
  EXPECT_NE(text.find("DROPPED"), std::string::npos);
}

TEST(Dataplane, FuzzFindsInjectedBug) {
  LineNet net;
  const auto& rules = net.problem.policies[0].rules();
  // Broken deployment: drop without its shield.
  core::Placement broken =
      core::buildPlacement(net.problem, {{0, rules[1].id, net.s0}});
  Dataplane dp(net.problem, broken);
  util::Rng rng(7);
  auto fuzz = dp.fuzzPath(0, 0, 512, rng);
  EXPECT_GT(fuzz.mismatches, 0);
  ASSERT_TRUE(fuzz.firstCounterexample.has_value());
  // The counterexample must be a header the policy permits (1010) but the
  // deployment drops.
  EXPECT_EQ(net.problem.policies[0].evaluate(*fuzz.firstCounterexample),
            Action::kPermit);
}

TEST(Dataplane, TagIsolationBetweenPolicies) {
  // Two policies over the same switch; each packet sees only its tag.
  topo::Graph g;
  topo::SwitchId s = g.addSwitch(10);
  topo::SwitchId s2 = g.addSwitch(10);
  g.addLink(s, s2);
  topo::PortId inA = g.addEntryPort(s);
  topo::PortId inB = g.addEntryPort(s);
  topo::PortId out = g.addEntryPort(s2);
  acl::Policy qa;
  qa.addRule(T("1***"), Action::kDrop);
  acl::Policy qb;  // permits everything (empty)
  core::PlacementProblem p;
  p.graph = &g;
  p.routing = {{inA, {{inA, out, {s, s2}, std::nullopt}}},
               {inB, {{inB, out, {s, s2}, std::nullopt}}}};
  p.policies = {qa, qb};
  const auto& rules = p.policies[0].rules();
  core::Placement pl = core::buildPlacement(p, {{0, rules[0].id, s}});
  Dataplane dp(p, pl);
  EXPECT_EQ(dp.verdictOf(0, 0, T("1000")), Verdict::kDropped);
  EXPECT_EQ(dp.verdictOf(1, 0, T("1000")), Verdict::kDelivered);
}

TEST(Dataplane, RejectsMismatchedPlacement) {
  LineNet net;
  core::Placement wrong(1);  // wrong switch count
  EXPECT_THROW(Dataplane(net.problem, wrong), std::invalid_argument);
}

// Differential fuzz: solver-produced deployments agree with the policy
// oracle on thousands of random concrete packets (slicing honored).
class FuzzAgainstOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzAgainstOracle, SolverPlacementsPassPacketFuzz) {
  core::InstanceConfig cfg;
  cfg.fatTreeK = 4;
  cfg.capacity = 40;
  cfg.ingressCount = 4;
  cfg.totalPaths = 10;
  cfg.rulesPerPolicy = 12;
  cfg.seed = GetParam();
  cfg.slicedTraffic = (GetParam() % 2 == 0);
  core::Instance inst(cfg);
  core::PlaceOptions opts;
  opts.encoder.enablePathSlicing = cfg.slicedTraffic;
  opts.budget = solver::Budget::seconds(20);
  core::PlaceOutcome out = core::place(inst.problem(), opts);
  ASSERT_TRUE(out.hasSolution());
  Dataplane dp(out.solvedProblem, out.placement);
  util::Rng rng(GetParam() * 31);
  auto fuzz = dp.fuzzAll(200, rng);
  EXPECT_EQ(fuzz.mismatches, 0)
      << "counterexample: " << fuzz.firstCounterexample->toString();
  EXPECT_GT(fuzz.samples, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzAgainstOracle,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace ruleplace::sim
