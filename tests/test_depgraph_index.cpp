// Differential coverage for the indexed / cached / parallel dependency-
// graph front-end (docs/depgraph.md):
//
//   * randomized generator sweeps — every builder (naive reference,
//     indexed, indexed over worker threads) must produce bit-identical
//     drop lists, shield sets and path slices on 5-tuple and raw-cube
//     policies alike;
//   * content-addressed cache behavior, pinned through the
//     depgraph.cache_hit / depgraph.cache_miss obs counters — identical
//     content hits, a single-rule mutation invalidates only the touched
//     policy, cache=false bypasses without polluting;
//   * corpus replay — every checked-in reproducer's policies agree across
//     builders too.

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "depgraph/cache.h"
#include "depgraph/depgraph.h"
#include "fuzz/generator.h"
#include "fuzz/reproducer.h"
#include "obs/obs.h"
#include "util/rng.h"

#ifndef RP_CORPUS_DIR
#error "RP_CORPUS_DIR must point at tests/corpus"
#endif

namespace {

using namespace ruleplace;

depgraph::BuildOptions builderOpts(depgraph::BuilderKind kind,
                                   int threads = 1) {
  depgraph::BuildOptions o;
  o.builder = kind;
  o.threads = threads;
  o.cache = false;
  return o;
}

// Bit-for-bit graph equality: drop order, every shield list, and the
// sliced view for every traffic descriptor the case carries.
void expectGraphsEqual(const depgraph::DependencyGraph& ref,
                       const depgraph::DependencyGraph& got,
                       const std::string& what) {
  ASSERT_EQ(ref.dropRules(), got.dropRules()) << what;
  for (int dropId : ref.dropRules()) {
    const auto r = ref.shieldsOf(dropId);
    const auto g = got.shieldsOf(dropId);
    ASSERT_EQ(std::vector<int>(r.begin(), r.end()),
              std::vector<int>(g.begin(), g.end()))
        << what << ": shields of drop rule " << dropId;
  }
}

void expectCaseAgrees(const fuzz::FuzzCase& fc, const std::string& what) {
  for (std::size_t p = 0; p < fc.policies.size(); ++p) {
    const acl::Policy& policy = fc.policies[p];
    const depgraph::DependencyGraph naive(
        policy, builderOpts(depgraph::BuilderKind::kNaive));
    const depgraph::DependencyGraph indexed(
        policy, builderOpts(depgraph::BuilderKind::kIndexed));
    const depgraph::DependencyGraph parallel2(
        policy, builderOpts(depgraph::BuilderKind::kIndexed, 2));
    const depgraph::DependencyGraph parallel3(
        policy, builderOpts(depgraph::BuilderKind::kAuto, 3));
    const std::string tag = what + " policy " + std::to_string(p);
    expectGraphsEqual(naive, indexed, tag + " [indexed]");
    expectGraphsEqual(naive, parallel2, tag + " [parallel x2]");
    expectGraphsEqual(naive, parallel3, tag + " [auto x3]");

    if (p < fc.routing.size()) {
      for (const auto& path : fc.routing[p].paths) {
        if (!path.traffic.has_value()) continue;
        ASSERT_EQ(naive.slicedDrops(*path.traffic),
                  indexed.slicedDrops(*path.traffic))
            << tag << " [sliced]";
      }
    }
  }
}

TEST(DepGraphIndex, RandomizedDifferentialAcrossBuilders) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    expectCaseAgrees(fuzz::generateCase(seed),
                     "seed " + std::to_string(seed));
  }
}

TEST(DepGraphIndex, LargeTuplePolicyExercisesIndex) {
  // Well past kAutoIndexThreshold so the indexed path really runs its
  // per-field pruning, with enough rules for candidate lists to matter.
  fuzz::GenParams params;
  params.policyCount = 2;
  params.rulesPerPolicy = 400;
  params.switchTarget = 4;
  util::Rng rng(0xd19ull);
  expectCaseAgrees(fuzz::generateCase(params, rng), "large 5-tuple");
}

TEST(DepGraphIndex, RawCubePoliciesUseChunkFields) {
  // Raw-cube policies have no 5-tuple layout, so the index decomposes the
  // width into 32-bit chunks; narrow widths also hit the fallback lists.
  for (int width : {6, 33, 70}) {
    fuzz::GenParams params;
    params.rawCubePolicies = true;
    params.rawWidth = width;
    params.policyCount = 2;
    params.rulesPerPolicy = 60;
    util::Rng rng(static_cast<std::uint64_t>(width) * 7919u);
    expectCaseAgrees(fuzz::generateCase(params, rng),
                     "raw width " + std::to_string(width));
  }
}

TEST(DepGraphIndex, CorpusReplayBitIdentical) {
  std::size_t files = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(RP_CORPUS_DIR)) {
    if (entry.path().extension() != ".scenario") continue;
    ++files;
    fuzz::Reproducer rep = fuzz::loadReproducer(entry.path().string());
    expectCaseAgrees(rep.fuzzCase, entry.path().filename().string());
  }
  EXPECT_GE(files, 5u) << "corpus directory went missing?";
}

class DepGraphCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Registry::global().setEnabled(true);
    obs::Registry::global().reset();
    depgraph::DepGraphCache::global().clear();
  }
  void TearDown() override {
    depgraph::DepGraphCache::global().clear();
    obs::Registry::global().reset();
    obs::Registry::global().setEnabled(false);
  }

  static std::int64_t hits() {
    return obs::Registry::global().counter("depgraph.cache_hit").value();
  }
  static std::int64_t misses() {
    return obs::Registry::global().counter("depgraph.cache_miss").value();
  }

  static acl::Policy tinyPolicy(int bias) {
    acl::Policy p;
    match::Ternary all(8);
    match::Ternary low(8);
    for (int b = 0; b < 4; ++b) low.setBit(b, (bias >> b) & 1);
    p.addRule(low, acl::Action::kDrop);
    p.addRule(all, acl::Action::kPermit);
    return p;
  }
};

TEST_F(DepGraphCacheTest, IdenticalContentHits) {
  const acl::Policy a = tinyPolicy(3);
  auto g1 = depgraph::acquireGraph(a);
  EXPECT_EQ(misses(), 1);
  EXPECT_EQ(hits(), 0);

  auto g2 = depgraph::acquireGraph(a);
  EXPECT_EQ(misses(), 1);
  EXPECT_EQ(hits(), 1);
  EXPECT_EQ(g1.get(), g2.get()) << "hit must share the cached graph";

  // A *copy* has identical content — content addressing must hit too.
  const acl::Policy b = a;
  auto g3 = depgraph::acquireGraph(b);
  EXPECT_EQ(misses(), 1);
  EXPECT_EQ(hits(), 2);
  EXPECT_EQ(g1.get(), g3.get());
}

TEST_F(DepGraphCacheTest, MutationInvalidatesOnlyTouchedPolicy) {
  acl::Policy a = tinyPolicy(1);
  const acl::Policy b = tinyPolicy(2);
  (void)depgraph::acquireGraph(a);
  (void)depgraph::acquireGraph(b);
  EXPECT_EQ(misses(), 2);

  // Mutating A changes its content key; B's entry must be untouched.
  match::Ternary extra(8);
  extra.setBit(7, 1);
  a.addRule(extra, acl::Action::kDrop);
  (void)depgraph::acquireGraph(a);
  EXPECT_EQ(misses(), 3) << "mutated policy must rebuild";
  (void)depgraph::acquireGraph(b);
  EXPECT_EQ(hits(), 1) << "untouched policy must still hit";
  EXPECT_EQ(misses(), 3);
}

TEST_F(DepGraphCacheTest, BypassLeavesCacheUntouched) {
  depgraph::BuildOptions noCache;
  noCache.cache = false;
  const acl::Policy a = tinyPolicy(5);
  auto g1 = depgraph::acquireGraph(a, noCache);
  auto g2 = depgraph::acquireGraph(a, noCache);
  EXPECT_EQ(hits(), 0);
  EXPECT_EQ(misses(), 0);
  EXPECT_EQ(depgraph::DepGraphCache::global().stats().entries, 0u);
  EXPECT_NE(g1.get(), g2.get()) << "bypass builds private graphs";
  expectGraphsEqual(*g1, *g2, "bypass");

  // And the bypassed result matches what the cache would serve.
  auto cached = depgraph::acquireGraph(a);
  EXPECT_EQ(misses(), 1);
  expectGraphsEqual(*cached, *g1, "bypass vs cached");
}

TEST(DepGraphCacheChurn, EvictionNeverInvalidatesHeldGraphs) {
  // Run-under-TSan regression for the serve daemon's sustained-churn
  // pattern: many threads acquire graphs from a small shared cache while
  // the LRU constantly evicts, and each thread keeps walking the
  // shieldsOf() spans of graphs whose cache entries are long gone.  A
  // DependencyGraph owns its CSR storage (arena member), so the
  // shared_ptr handed out by acquire() must keep every span valid no
  // matter what the cache does — this test fails under TSan (or crashes)
  // if eviction ever freed storage still referenced by a holder.
  depgraph::DepGraphCache cache(4);  // far below the working set

  constexpr int kPolicies = 24;
  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  std::vector<acl::Policy> policies;
  std::vector<std::int64_t> refShieldSum(kPolicies, 0);
  for (int p = 0; p < kPolicies; ++p) {
    // Distinct seeds give distinct content keys, so the working set
    // cycles through the whole LRU.
    fuzz::FuzzCase fc = fuzz::generateCase(1000 + static_cast<uint64_t>(p));
    policies.push_back(fc.policies.front());
    const depgraph::DependencyGraph ref(
        policies.back(), builderOpts(depgraph::BuilderKind::kNaive));
    for (int dropId : ref.dropRules()) {
      for (int s : ref.shieldsOf(dropId)) refShieldSum[p] += s;
    }
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Hold a trailing window of graphs so walks happen well after the
      // cache evicted their entries.
      std::vector<std::pair<int, std::shared_ptr<const depgraph::DependencyGraph>>>
          held;
      util::Rng rng(static_cast<std::uint64_t>(t) + 77);
      for (int i = 0; i < kIters; ++i) {
        const int p = static_cast<int>(rng.below(kPolicies));
        held.emplace_back(p, cache.acquire(policies[static_cast<std::size_t>(p)]));
        if (held.size() > 8) held.erase(held.begin());
        for (const auto& [id, graph] : held) {
          std::int64_t sum = 0;
          for (int dropId : graph->dropRules()) {
            for (int s : graph->shieldsOf(dropId)) sum += s;
          }
          if (sum != refShieldSum[static_cast<std::size_t>(id)]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(mismatches.load(), 0);
  const depgraph::CacheStats st = cache.stats();
  // Counter coherence under concurrency: every acquire is exactly one hit
  // or one miss, the LRU never overflows, and evictions only follow
  // misses.
  EXPECT_EQ(st.hits + st.misses,
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_LE(st.entries, 4u);
  EXPECT_LE(st.evictions, st.misses);
  EXPECT_GE(st.misses, static_cast<std::uint64_t>(kPolicies));
}

}  // namespace
