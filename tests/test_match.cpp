// Unit and property tests for the ternary match algebra — the foundation
// every other module's correctness rests on.

#include <gtest/gtest.h>

#include "match/cubeset.h"
#include "match/ternary.h"
#include "match/tuple5.h"
#include "util/rng.h"

namespace ruleplace::match {
namespace {

TEST(Ternary, RoundTripsThroughString) {
  for (const char* s : {"10*1", "****", "0000", "1111", "01*0*1"}) {
    EXPECT_EQ(Ternary::fromString(s).toString(), s);
  }
}

TEST(Ternary, RejectsBadInput) {
  EXPECT_THROW(Ternary::fromString("10x"), std::invalid_argument);
  EXPECT_THROW(Ternary(0), std::invalid_argument);
  EXPECT_THROW(Ternary(kMaxWidth + 1), std::invalid_argument);
  EXPECT_THROW(Ternary(4).setBit(4, 0), std::out_of_range);
}

TEST(Ternary, BitAccessors) {
  Ternary t = Ternary::fromString("10*");
  EXPECT_EQ(t.bit(2), 1);
  EXPECT_EQ(t.bit(1), 0);
  EXPECT_EQ(t.bit(0), -1);
  t.setBit(0, 1);
  EXPECT_EQ(t.toString(), "101");
  t.setBit(2, -1);
  EXPECT_EQ(t.toString(), "*01");
}

TEST(Ternary, WildcardCount) {
  EXPECT_EQ(Ternary::fromString("****").wildcardCount(), 4);
  EXPECT_EQ(Ternary::fromString("10*1").wildcardCount(), 1);
  EXPECT_EQ(Ternary::fromString("0000").wildcardCount(), 0);
  EXPECT_TRUE(Ternary(16).isFullWildcard());
}

TEST(Ternary, OverlapBasics) {
  EXPECT_TRUE(Ternary::fromString("1*").overlaps(Ternary::fromString("*0")));
  EXPECT_FALSE(Ternary::fromString("11").overlaps(Ternary::fromString("10")));
  EXPECT_TRUE(Ternary::fromString("**").overlaps(Ternary::fromString("01")));
}

TEST(Ternary, IntersectComputesMeet) {
  auto i = Ternary::fromString("1**").intersect(Ternary::fromString("*0*"));
  ASSERT_TRUE(i.has_value());
  EXPECT_EQ(i->toString(), "10*");
  EXPECT_FALSE(
      Ternary::fromString("11").intersect(Ternary::fromString("00")));
}

TEST(Ternary, SubsumesIsContainment) {
  EXPECT_TRUE(Ternary::fromString("1**").subsumes(Ternary::fromString("101")));
  EXPECT_FALSE(
      Ternary::fromString("101").subsumes(Ternary::fromString("1**")));
  EXPECT_TRUE(Ternary::fromString("***").subsumes(Ternary::fromString("***")));
}

TEST(Ternary, SubtractDisjointReturnsSelf) {
  Ternary a = Ternary::fromString("11*");
  auto diff = a.subtract(Ternary::fromString("00*"));
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_EQ(diff[0].toString(), "11*");
}

TEST(Ternary, SubtractSubsumedIsEmpty) {
  EXPECT_TRUE(Ternary::fromString("101")
                  .subtract(Ternary::fromString("1**"))
                  .empty());
}

TEST(Ternary, SubtractSplitsCube) {
  // *** minus 1*1 = {0**, 1*0}.
  auto diff = Ternary::fromString("***").subtract(Ternary::fromString("1*1"));
  CubeSet set(3);
  for (const auto& c : diff) set.add(c);
  // The pieces are disjoint from the subtrahend...
  for (const auto& c : diff) {
    EXPECT_FALSE(c.overlaps(Ternary::fromString("1*1")));
  }
  // ...and together with it cover everything.
  set.add(Ternary::fromString("1*1"));
  EXPECT_TRUE(set.covers(Ternary::fromString("***")));
}

TEST(Tuple5, LayoutWidthIs104) {
  EXPECT_EQ(Tuple5Layout::kWidth, 104);
  Tuple5 t;
  EXPECT_TRUE(t.toTernary().isFullWildcard());
}

TEST(Tuple5, PrefixPinsTopBits) {
  Tuple5 t;
  t.src = {0x0a000000u, 8};  // 10.0.0.0/8
  Ternary cube = t.toTernary();
  // src IP occupies bits [72, 104); the /8 pins the top 8 of them.
  EXPECT_EQ(cube.wildcardCount(), 104 - 8);
  EXPECT_EQ(cube.bit(Tuple5Layout::kSrcIpOffset + 31), 0);  // MSB of 10 = 0
  EXPECT_EQ(cube.bit(Tuple5Layout::kSrcIpOffset + 27), 1);  // 10 = 00001010
}

TEST(Tuple5, NestedPrefixesOverlap) {
  Tuple5 wide;
  wide.src = {0x0a000000u, 8};
  Tuple5 narrow;
  narrow.src = {0x0a010000u, 16};
  EXPECT_TRUE(wide.toTernary().overlaps(narrow.toTernary()));
  EXPECT_TRUE(wide.toTernary().subsumes(narrow.toTernary()));
  Tuple5 other;
  other.src = {0x0b000000u, 8};
  EXPECT_FALSE(wide.toTernary().overlaps(other.toTernary()));
}

TEST(Tuple5, PortsAndProtoNarrowTheCube) {
  Tuple5 t;
  t.dstPort = PortMatch::exact(443);
  t.proto = ProtoMatch::tcp();
  Ternary cube = t.toTernary();
  EXPECT_EQ(cube.wildcardCount(), 104 - 16 - 8);
  EXPECT_EQ(t.toString(), "0.0.0.0/0 -> 0.0.0.0/0 tcp dport=443");
}

TEST(Tuple5, DstPrefixCubeMatchesOnlyDstField) {
  Ternary c = dstPrefixCube({0x0a000100u, 24});
  EXPECT_EQ(c.wildcardCount(), 104 - 24);
  Tuple5 inside;
  inside.dst = {0x0a000100u, 32};
  EXPECT_TRUE(c.overlaps(inside.toTernary()));
  Tuple5 outside;
  outside.dst = {0x0a000200u, 32};
  EXPECT_FALSE(c.overlaps(outside.toTernary()));
}

TEST(CubeSet, AddDeduplicatesSubsumed) {
  CubeSet s(4);
  s.add(Ternary::fromString("10*1"));
  s.add(Ternary::fromString("1001"));  // subsumed: ignored
  EXPECT_EQ(s.cubeCount(), 1u);
  s.add(Ternary::fromString("1***"));  // absorbs the previous one
  EXPECT_EQ(s.cubeCount(), 1u);
  EXPECT_EQ(s.cubes()[0].toString(), "1***");
}

TEST(CubeSet, CoversAcrossMultipleCubes) {
  CubeSet s(2);
  s.add(Ternary::fromString("0*"));
  s.add(Ternary::fromString("1*"));
  EXPECT_TRUE(s.covers(Ternary::fromString("**")));
  CubeSet partial(2);
  partial.add(Ternary::fromString("00"));
  partial.add(Ternary::fromString("11"));
  EXPECT_FALSE(partial.covers(Ternary::fromString("**")));
}

TEST(CubeSet, SubtractAndIntersectAreExact) {
  CubeSet a(3);
  a.add(Ternary::fromString("1**"));
  CubeSet b(3);
  b.add(Ternary::fromString("**1"));
  CubeSet diff = a.subtract(b);     // 1*0
  CubeSet inter = a.intersect(b);   // 1*1
  EXPECT_TRUE(diff.covers(Ternary::fromString("1*0")));
  EXPECT_FALSE(diff.contains(Ternary::fromString("101")));
  EXPECT_TRUE(inter.covers(Ternary::fromString("1*1")));
  EXPECT_FALSE(inter.contains(Ternary::fromString("100")));
}

TEST(CubeSet, EqualsIsMutualCoverage) {
  CubeSet a(2);
  a.add(Ternary::fromString("**"));
  CubeSet b(2);
  b.add(Ternary::fromString("0*"));
  b.add(Ternary::fromString("1*"));
  EXPECT_TRUE(a.equals(b));
  b.add(Ternary::fromString("11"));
  EXPECT_TRUE(a.equals(b));  // redundant cube changes nothing
}

TEST(CubeSet, SampleReturnsMember) {
  CubeSet s(4);
  EXPECT_FALSE(s.sample().has_value());
  s.add(Ternary::fromString("1*0*"));
  auto h = s.sample();
  ASSERT_TRUE(h.has_value());
  EXPECT_TRUE(s.contains(*h));
  EXPECT_EQ(h->wildcardCount(), 0);
}

// ---- randomized property sweep --------------------------------------------

Ternary randomCube(util::Rng& rng, int width) {
  Ternary t(width);
  for (int i = 0; i < width; ++i) {
    std::uint64_t r = rng.below(3);
    t.setBit(i, r == 2 ? -1 : static_cast<int>(r));
  }
  return t;
}

Ternary randomHeader(util::Rng& rng, int width) {
  Ternary t(width);
  for (int i = 0; i < width; ++i) {
    t.setBit(i, static_cast<int>(rng.below(2)));
  }
  return t;
}

class CubeAlgebraProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CubeAlgebraProperty, SubtractPartitionsMembership) {
  util::Rng rng(GetParam());
  const int width = 8;
  Ternary a = randomCube(rng, width);
  Ternary b = randomCube(rng, width);
  auto diff = a.subtract(b);
  // Pieces are disjoint from b and from each other, and membership is
  // exactly a \ b for 64 random headers.
  for (std::size_t i = 0; i < diff.size(); ++i) {
    EXPECT_FALSE(diff[i].overlaps(b));
    for (std::size_t j = i + 1; j < diff.size(); ++j) {
      EXPECT_FALSE(diff[i].overlaps(diff[j]));
    }
  }
  for (int trial = 0; trial < 64; ++trial) {
    Ternary h = randomHeader(rng, width);
    bool inDiff = false;
    for (const auto& c : diff) inDiff |= c.matches(h);
    EXPECT_EQ(inDiff, a.matches(h) && !b.matches(h))
        << "header " << h.toString() << " a=" << a.toString()
        << " b=" << b.toString();
  }
}

TEST_P(CubeAlgebraProperty, IntersectAgreesWithMembership) {
  util::Rng rng(GetParam() ^ 0x1234);
  const int width = 8;
  Ternary a = randomCube(rng, width);
  Ternary b = randomCube(rng, width);
  auto meet = a.intersect(b);
  for (int trial = 0; trial < 64; ++trial) {
    Ternary h = randomHeader(rng, width);
    bool inMeet = meet.has_value() && meet->matches(h);
    EXPECT_EQ(inMeet, a.matches(h) && b.matches(h));
  }
  EXPECT_EQ(a.overlaps(b), meet.has_value());
  EXPECT_EQ(a.overlaps(b), b.overlaps(a));
}

TEST_P(CubeAlgebraProperty, SubsumesAgreesWithSubtract) {
  util::Rng rng(GetParam() ^ 0x9999);
  const int width = 6;
  Ternary a = randomCube(rng, width);
  Ternary b = randomCube(rng, width);
  EXPECT_EQ(b.subsumes(a), a.subtract(b).empty());
}

TEST_P(CubeAlgebraProperty, CubeSetOpsAgreeWithMembership) {
  util::Rng rng(GetParam() ^ 0xabcdef);
  const int width = 6;
  CubeSet a(width);
  CubeSet b(width);
  for (int i = 0; i < 4; ++i) {
    a.add(randomCube(rng, width));
    b.add(randomCube(rng, width));
  }
  CubeSet diff = a.subtract(b);
  CubeSet inter = a.intersect(b);
  for (int trial = 0; trial < 64; ++trial) {
    Ternary h = randomHeader(rng, width);
    EXPECT_EQ(diff.contains(h), a.contains(h) && !b.contains(h));
    EXPECT_EQ(inter.contains(h), a.contains(h) && b.contains(h));
  }
  EXPECT_TRUE(a.coversSet(inter));
  EXPECT_TRUE(a.coversSet(diff));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CubeAlgebraProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace ruleplace::match
