// Tests for post-placement TCAM table compression.

#include <gtest/gtest.h>

#include "core/compress.h"
#include "core/instance.h"
#include "core/placer.h"
#include "core/verify.h"
#include "sim/dataplane.h"

namespace ruleplace::core {
namespace {

using acl::Action;
using match::Ternary;

Ternary T(const char* s) { return Ternary::fromString(s); }

// Hand-build a placement on a one-switch network.
struct OneSwitch {
  topo::Graph graph;
  topo::SwitchId s0;
  core::PlacementProblem problem;

  explicit OneSwitch(acl::Policy q, int capacity = 10) {
    s0 = graph.addSwitch(capacity);
    topo::SwitchId s1 = graph.addSwitch(capacity);
    graph.addLink(s0, s1);
    topo::PortId in = graph.addEntryPort(s0);
    topo::PortId out = graph.addEntryPort(s1);
    problem.graph = &graph;
    problem.routing = {{in, {{in, out, {s0, s1}, std::nullopt}}}};
    problem.policies = {std::move(q)};
  }
};

TEST(Compress, RemovesShadowedDuplicate) {
  acl::Policy q;
  int d1 = q.addRule(T("10**"), Action::kDrop);
  int d2 = q.addRule(T("100*"), Action::kDrop);  // subsumed by d1
  OneSwitch net(q);
  Placement pl =
      buildPlacement(net.problem, {{0, d1, net.s0}, {0, d2, net.s0}});
  CompressionStats stats = compressTables(pl);
  EXPECT_EQ(stats.redundantRemoved, 1);
  EXPECT_EQ(pl.usedCapacity(net.s0), 1);
  auto v = verifyPlacement(net.problem, pl);
  EXPECT_TRUE(v.ok) << v.summary();
}

TEST(Compress, RemovesInertPermit) {
  // A permit that shields nothing (below the drop / disjoint) is a no-op.
  acl::Policy q;
  int d = q.addRule(T("10**"), Action::kDrop);
  int p = q.addRule(T("01**"), Action::kPermit);
  OneSwitch net(q);
  Placement pl =
      buildPlacement(net.problem, {{0, d, net.s0}, {0, p, net.s0}});
  CompressionStats stats = compressTables(pl);
  EXPECT_EQ(stats.redundantRemoved, 1);
  EXPECT_EQ(pl.usedCapacity(net.s0), 1);
  EXPECT_EQ(pl.table(net.s0)[0].action, Action::kDrop);
}

TEST(Compress, KeepsShieldingPermit) {
  acl::Policy q;
  int p = q.addRule(T("101*"), Action::kPermit);
  int d = q.addRule(T("10**"), Action::kDrop);
  OneSwitch net(q);
  Placement pl =
      buildPlacement(net.problem, {{0, p, net.s0}, {0, d, net.s0}});
  CompressionStats stats = compressTables(pl);
  EXPECT_EQ(stats.totalSaved(), 0);
  EXPECT_EQ(pl.usedCapacity(net.s0), 2);
}

TEST(Compress, FusesAdjacentCubes) {
  // 100* and 101* fuse into 10**; the placer could never do this (it does
  // not construct new rules), which is exactly why the post-pass exists.
  acl::Policy q;
  int d1 = q.addRule(T("100*"), Action::kDrop);
  int d2 = q.addRule(T("101*"), Action::kDrop);
  OneSwitch net(q);
  Placement pl =
      buildPlacement(net.problem, {{0, d1, net.s0}, {0, d2, net.s0}});
  CompressionStats stats = compressTables(pl);
  EXPECT_EQ(stats.pairsFused, 1);
  EXPECT_EQ(pl.usedCapacity(net.s0), 1);
  EXPECT_EQ(pl.table(net.s0)[0].matchField.toString(), "10**");
  auto v = verifyPlacement(net.problem, pl);
  EXPECT_TRUE(v.ok) << v.summary();
}

TEST(Compress, DoesNotFuseAcrossTags) {
  // Same fields but different tags: fusing would leak rules across
  // policies.
  topo::Graph g;
  topo::SwitchId s = g.addSwitch(10);
  topo::SwitchId s2 = g.addSwitch(10);
  g.addLink(s, s2);
  topo::PortId inA = g.addEntryPort(s);
  topo::PortId inB = g.addEntryPort(s);
  topo::PortId out = g.addEntryPort(s2);
  acl::Policy qa;
  int ra = qa.addRule(T("100*"), Action::kDrop);
  acl::Policy qb;
  int rb = qb.addRule(T("101*"), Action::kDrop);
  PlacementProblem p;
  p.graph = &g;
  p.routing = {{inA, {{inA, out, {s, s2}, std::nullopt}}},
               {inB, {{inB, out, {s, s2}, std::nullopt}}}};
  p.policies = {qa, qb};
  Placement pl = buildPlacement(p, {{0, ra, s}, {1, rb, s}});
  CompressionStats stats = compressTables(pl);
  EXPECT_EQ(stats.totalSaved(), 0);
  EXPECT_EQ(pl.usedCapacity(s), 2);
}

TEST(Compress, ChainFusionCollapsesQuadrant) {
  // Four disjoint cubes covering 1***: fuse pairwise down to one entry.
  acl::Policy q;
  std::vector<int> ids;
  for (const char* f : {"100*", "101*", "110*", "111*"}) {
    ids.push_back(q.addRule(T(f), Action::kDrop));
  }
  OneSwitch net(q);
  std::vector<PlacedRule> placed;
  for (int id : ids) placed.push_back({0, id, net.s0});
  Placement pl = buildPlacement(net.problem, placed);
  CompressionStats stats = compressTables(pl);
  EXPECT_EQ(pl.usedCapacity(net.s0), 1);
  EXPECT_EQ(pl.table(net.s0)[0].matchField.toString(), "1***");
  EXPECT_EQ(stats.pairsFused, 3);
  auto v = verifyPlacement(net.problem, pl);
  EXPECT_TRUE(v.ok) << v.summary();
}

TEST(Compress, GoldenPinnedTables) {
  // Pinned end state of a table exercising both phases in sequence: the
  // duplicate drops out, then the two adjacent drops fuse.  Any change to
  // the engines' application order shows up here first.
  acl::Policy q;
  int d1 = q.addRule(T("100*"), Action::kDrop);
  int d2 = q.addRule(T("101*"), Action::kDrop);
  int d3 = q.addRule(T("1000"), Action::kDrop);  // subsumed by d1
  int p1 = q.addRule(T("01**"), Action::kPermit);  // shields nothing: inert
  OneSwitch net(q);
  for (bool restart : {false, true}) {
    Placement pl = buildPlacement(net.problem,
                                  {{0, d1, net.s0},
                                   {0, d2, net.s0},
                                   {0, d3, net.s0},
                                   {0, p1, net.s0}});
    CompressOptions copts;
    copts.restartReference = restart;
    CompressionStats stats = compressTables(pl, copts);
    EXPECT_EQ(stats.redundantRemoved, 2) << "restart=" << restart;
    EXPECT_EQ(stats.pairsFused, 1) << "restart=" << restart;
    ASSERT_EQ(pl.usedCapacity(net.s0), 1) << "restart=" << restart;
    EXPECT_EQ(pl.table(net.s0)[0].matchField.toString(), "10**");
    EXPECT_EQ(pl.table(net.s0)[0].action, Action::kDrop);
  }
}

// The worklist engine skips re-checks the restart engine repeats; the two
// must stay operation-for-operation identical.  Tables come from solved
// placements over heavily-overlapping policies (maximal compression
// traffic), compared entry-by-entry after both engines run.
class CompressDifferential : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CompressDifferential, WorklistMatchesRestartBitForBit) {
  InstanceConfig cfg;
  cfg.fatTreeK = 4;
  cfg.capacity = 30;
  cfg.ingressCount = 3;
  cfg.totalPaths = 8;
  cfg.rulesPerPolicy = 10;
  cfg.gen.nestProbability = 0.85;
  cfg.seed = GetParam() * 131;
  Instance inst(cfg);
  PlaceOptions opts;
  opts.budget = solver::Budget::seconds(20);
  PlaceOutcome out = place(inst.problem(), opts);
  ASSERT_TRUE(out.hasSolution());

  Placement worklist = out.placement;
  Placement restart = out.placement;
  CompressionStats wl = compressTables(worklist);
  CompressOptions refOpts;
  refOpts.restartReference = true;
  CompressionStats rs = compressTables(restart, refOpts);

  EXPECT_EQ(wl.redundantRemoved, rs.redundantRemoved);
  EXPECT_EQ(wl.pairsFused, rs.pairsFused);
  ASSERT_EQ(worklist.switchCount(), restart.switchCount());
  for (int sw = 0; sw < worklist.switchCount(); ++sw) {
    const auto& a = worklist.table(sw);
    const auto& b = restart.table(sw);
    ASSERT_EQ(a.size(), b.size()) << "switch " << sw;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_TRUE(a[i].matchField == b[i].matchField)
          << "switch " << sw << " entry " << i;
      EXPECT_EQ(a[i].action, b[i].action) << "switch " << sw;
      EXPECT_EQ(a[i].tags, b[i].tags) << "switch " << sw;
      EXPECT_EQ(a[i].priority, b[i].priority) << "switch " << sw;
      EXPECT_EQ(a[i].merged, b[i].merged) << "switch " << sw;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressDifferential,
                         ::testing::Range<std::uint64_t>(1, 11));

// Property: compression never changes semantics on solver-produced
// deployments (checked both symbolically and by packet fuzz).
class CompressionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompressionProperty, PreservesSemanticsOnRealPlacements) {
  InstanceConfig cfg;
  cfg.fatTreeK = 4;
  cfg.capacity = 30;
  cfg.ingressCount = 4;
  cfg.totalPaths = 10;
  cfg.rulesPerPolicy = 12;
  cfg.gen.nestProbability = 0.8;  // heavy overlap: compression fodder
  cfg.seed = GetParam();
  Instance inst(cfg);
  PlaceOptions opts;
  opts.budget = solver::Budget::seconds(20);
  PlaceOutcome out = place(inst.problem(), opts);
  ASSERT_TRUE(out.hasSolution());
  std::int64_t before = out.placement.totalInstalledRules();
  CompressionStats stats = compressTables(out.placement);
  EXPECT_EQ(out.placement.totalInstalledRules(), before - stats.totalSaved());
  auto v = verifyPlacement(out.solvedProblem, out.placement);
  EXPECT_TRUE(v.ok) << v.summary();
  sim::Dataplane dp(out.solvedProblem, out.placement);
  util::Rng rng(GetParam() * 17);
  EXPECT_EQ(dp.fuzzAll(100, rng).mismatches, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressionProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace ruleplace::core
