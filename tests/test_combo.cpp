// Cross-feature interaction properties: the paper's extensions composed —
// merging + slicing, monitors + incremental updates, compression on merged
// tables — validated end to end by the exact verifier and the dataplane
// fuzzer.

#include <gtest/gtest.h>

#include "core/compress.h"
#include "core/incremental.h"
#include "core/instance.h"
#include "core/placer.h"
#include "core/update_plan.h"
#include "core/verify.h"
#include "sim/dataplane.h"

namespace ruleplace::core {
namespace {

class ComboProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ComboProperty, MergingPlusSlicingStaysExact) {
  InstanceConfig cfg;
  cfg.fatTreeK = 4;
  cfg.capacity = 40;
  cfg.ingressCount = 4;
  cfg.totalPaths = 12;
  cfg.rulesPerPolicy = 9;
  cfg.mergeableRules = 3;
  cfg.slicedTraffic = true;
  cfg.seed = GetParam();
  Instance inst(cfg);
  PlaceOptions opts;
  opts.encoder.enableMerging = true;
  opts.encoder.enablePathSlicing = true;
  opts.budget = solver::Budget::seconds(4);
  PlaceOutcome out = place(inst.problem(), opts);
  ASSERT_TRUE(out.hasSolution());
  auto v = verifyPlacement(out.solvedProblem, out.placement, true);
  EXPECT_TRUE(v.ok) << v.summary();
  sim::Dataplane dp(out.solvedProblem, out.placement);
  util::Rng rng(GetParam() * 13);
  EXPECT_EQ(dp.fuzzAll(100, rng).mismatches, 0);
}

TEST_P(ComboProperty, CompressionOnMergedTablesStaysExact) {
  InstanceConfig cfg;
  cfg.fatTreeK = 4;
  cfg.capacity = 24;
  cfg.ingressCount = 6;
  cfg.totalPaths = 18;
  cfg.rulesPerPolicy = 8;
  cfg.mergeableRules = 4;
  cfg.seed = GetParam() + 40;
  Instance inst(cfg);
  PlaceOptions opts;
  opts.encoder.enableMerging = true;
  opts.budget = solver::Budget::seconds(4);
  PlaceOutcome out = place(inst.problem(), opts);
  if (!out.hasSolution()) GTEST_SKIP() << "instance infeasible";
  std::int64_t before = out.placement.totalInstalledRules();
  CompressionStats cs = compressTables(out.placement);
  EXPECT_EQ(out.placement.totalInstalledRules(), before - cs.totalSaved());
  auto v = verifyPlacement(out.solvedProblem, out.placement);
  EXPECT_TRUE(v.ok) << v.summary();
}

TEST_P(ComboProperty, IncrementalAfterMergedBaseStaysExact) {
  InstanceConfig cfg;
  cfg.fatTreeK = 4;
  cfg.capacity = 50;
  cfg.ingressCount = 4;
  cfg.totalPaths = 10;
  cfg.rulesPerPolicy = 8;
  cfg.mergeableRules = 3;
  cfg.seed = GetParam() + 80;
  Instance inst(cfg);
  PlaceOptions mergeOpts;
  mergeOpts.encoder.enableMerging = true;
  mergeOpts.budget = solver::Budget::seconds(4);
  PlaceOutcome base = place(inst.problem(), mergeOpts);
  ASSERT_TRUE(base.hasSolution());

  // Install one new tenant incrementally on the merged base.
  util::Rng rng(GetParam() + 7);
  classbench::GeneratorConfig gen;
  gen.rulesPerPolicy = 6;
  classbench::PolicyGenerator pg(gen, rng.next());
  topo::ShortestPathRouter router(inst.graph());
  topo::PortId in = 2;
  topo::Path path = router.route(in, inst.graph().entryPortCount() - 1, rng);
  PlaceOptions fast;
  fast.satisfiabilityOnly = true;
  fast.budget = solver::Budget::seconds(4);
  PlaceOutcome inc = installPolicies(base.solvedProblem, base.placement,
                                     {{in, {path}}}, {pg.generate()}, fast);
  ASSERT_TRUE(inc.hasSolution());
  auto v = verifyPlacement(inc.solvedProblem, inc.placement);
  EXPECT_TRUE(v.ok) << v.summary();

  // And plan the rollout: base -> combined must only add entries.
  UpdatePlan plan = planUpdate(base.placement, inc.placement);
  EXPECT_EQ(plan.removeCount, 0);
  EXPECT_GT(plan.addCount, 0);
}

TEST_P(ComboProperty, MonitorRespectedThroughReroute) {
  // Line of 4 switches; monitor at position 2; reroute to a path that
  // still contains the monitor: drops stay downstream after the move.
  topo::Graph g;
  std::vector<topo::SwitchId> sw;
  for (int i = 0; i < 4; ++i) sw.push_back(g.addSwitch(6));
  for (int i = 0; i + 1 < 4; ++i) g.addLink(sw[i], sw[i + 1]);
  g.addLink(sw[0], sw[2]);  // shortcut enabling a different route
  topo::PortId in = g.addEntryPort(sw[0]);
  topo::PortId out = g.addEntryPort(sw[3]);
  acl::Policy q;
  q.addRule(match::Ternary::fromString("1010****"), acl::Action::kPermit);
  q.addRule(match::Ternary::fromString("10******"), acl::Action::kDrop);

  PlacementProblem p;
  p.graph = &g;
  p.routing = {{in, {{in, out, {sw[0], sw[1], sw[2], sw[3]}, std::nullopt}}}};
  p.policies = {q};
  PlaceOptions opts;
  opts.encoder.monitors = {
      {sw[2], match::Ternary::fromString("10******")}};
  PlaceOutcome base = place(p, opts);
  ASSERT_TRUE(base.hasSolution());
  EXPECT_EQ(base.placement.usedCapacity(sw[0]), 0);
  EXPECT_EQ(base.placement.usedCapacity(sw[1]), 0);

  // Reroute over the shortcut (still passes the monitor at sw[2]).
  PlaceOptions fast = opts;
  fast.satisfiabilityOnly = true;
  PlaceOutcome moved = reroutePolicies(
      base.solvedProblem, base.placement, {0},
      {{in, {{in, out, {sw[0], sw[2], sw[3]}, std::nullopt}}}}, fast);
  ASSERT_TRUE(moved.hasSolution());
  EXPECT_EQ(moved.placement.usedCapacity(sw[0]), 0);
  auto v = verifyPlacement(moved.solvedProblem, moved.placement);
  EXPECT_TRUE(v.ok) << v.summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComboProperty,
                         ::testing::Range<std::uint64_t>(1, 5));

}  // namespace
}  // namespace ruleplace::core
