// Dedicated randomized stress for cardinality- and PB-heavy models —
// the constraint mix the placement encoder actually produces (covers,
// implications, capacities, objective bounds) — cross-checked against the
// brute-force reference.

#include <gtest/gtest.h>

#include "solver/bruteforce.h"
#include "solver/optimize.h"
#include "util/rng.h"

namespace ruleplace::solver {
namespace {

// Placement-shaped random model: cover constraints (>= 1 over subsets),
// implication pairs (a >= b), and capacity constraints (<= C over
// subsets), unit objective.
Model placementShapedModel(util::Rng& rng, int nVars) {
  Model m;
  std::vector<ModelVar> vars;
  for (int i = 0; i < nVars; ++i) vars.push_back(m.addBinary());
  int nCovers = static_cast<int>(rng.range(2, 5));
  for (int c = 0; c < nCovers; ++c) {
    LinearExpr e;
    int k = static_cast<int>(rng.range(2, 5));
    for (int t = 0; t < k; ++t) e.add(1, vars[rng.below(nVars)]);
    m.addConstraint(std::move(e), Cmp::kGe, 1);
  }
  int nImpl = static_cast<int>(rng.range(1, 5));
  for (int c = 0; c < nImpl; ++c) {
    LinearExpr e;
    e.add(1, vars[rng.below(nVars)]).add(-1, vars[rng.below(nVars)]);
    m.addConstraint(std::move(e), Cmp::kGe, 0);
  }
  int nCaps = static_cast<int>(rng.range(1, 4));
  for (int c = 0; c < nCaps; ++c) {
    LinearExpr e;
    int k = static_cast<int>(rng.range(3, std::min(nVars, 8)));
    for (int t = 0; t < k; ++t) e.add(1, vars[rng.below(nVars)]);
    m.addConstraint(std::move(e), Cmp::kLe, rng.range(1, 3));
  }
  LinearExpr obj;
  for (ModelVar v : vars) obj.add(1, v);
  m.setObjective(obj);
  return m;
}

// Weighted-PB random model: coefficients up to 7 both in constraints and
// the objective, exercising the general PB propagation path.
Model weightedPbModel(util::Rng& rng, int nVars) {
  Model m;
  std::vector<ModelVar> vars;
  for (int i = 0; i < nVars; ++i) vars.push_back(m.addBinary());
  int nCons = static_cast<int>(rng.range(3, 7));
  for (int c = 0; c < nCons; ++c) {
    LinearExpr e;
    int k = static_cast<int>(rng.range(2, 6));
    for (int t = 0; t < k; ++t) {
      e.add(rng.range(1, 7), vars[rng.below(nVars)]);
    }
    if (rng.chance(0.5)) {
      m.addConstraint(std::move(e), Cmp::kGe, rng.range(2, 9));
    } else {
      m.addConstraint(std::move(e), Cmp::kLe, rng.range(3, 12));
    }
  }
  LinearExpr obj;
  for (ModelVar v : vars) obj.add(rng.range(1, 5), v);
  m.setObjective(obj);
  return m;
}

class PlacementShapedCrossCheck
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlacementShapedCrossCheck, MatchesBruteForce) {
  util::Rng rng(GetParam() * 101);
  for (int round = 0; round < 8; ++round) {
    Model m = placementShapedModel(rng, 12);
    OptResult exact = bruteForceSolve(m);
    OptResult got = Optimizer::solve(m);
    ASSERT_EQ(got.status, exact.status) << "round " << round;
    if (exact.status == OptStatus::kOptimal) {
      EXPECT_EQ(got.objective, exact.objective) << "round " << round;
      EXPECT_TRUE(m.feasible(got.assignment));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacementShapedCrossCheck,
                         ::testing::Range<std::uint64_t>(1, 13));

class WeightedPbCrossCheck : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(WeightedPbCrossCheck, MatchesBruteForce) {
  util::Rng rng(GetParam() * 211);
  for (int round = 0; round < 8; ++round) {
    Model m = weightedPbModel(rng, 11);
    OptResult exact = bruteForceSolve(m);
    OptResult got = Optimizer::solve(m);
    ASSERT_EQ(got.status, exact.status) << "round " << round;
    if (exact.status == OptStatus::kOptimal) {
      EXPECT_EQ(got.objective, exact.objective) << "round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedPbCrossCheck,
                         ::testing::Range<std::uint64_t>(1, 13));

// With a *valid* lower bound attached, results must not change (the bound
// is an optimization aid, never a semantics change).
class BoundedCrossCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BoundedCrossCheck, ValidBoundPreservesOptimum) {
  util::Rng rng(GetParam() * 307);
  for (int round = 0; round < 6; ++round) {
    Model m = placementShapedModel(rng, 10);
    OptResult exact = bruteForceSolve(m);
    if (exact.status != OptStatus::kOptimal) continue;
    // Any bound <= optimum is valid; try a few.
    for (std::int64_t delta : {0, 1, 3}) {
      Model bounded = m;
      bounded.setObjectiveLowerBound(exact.objective - delta);
      OptResult got = Optimizer::solve(bounded);
      ASSERT_EQ(got.status, OptStatus::kOptimal);
      EXPECT_EQ(got.objective, exact.objective)
          << "round " << round << " delta " << delta;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundedCrossCheck,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace ruleplace::solver
