// Dedicated randomized stress for cardinality- and PB-heavy models —
// the constraint mix the placement encoder actually produces (covers,
// implications, capacities, objective bounds) — cross-checked against the
// brute-force reference.

#include <gtest/gtest.h>

#include "solver/bruteforce.h"
#include "solver/optimize.h"
#include "solver/sat.h"
#include "util/rng.h"

namespace ruleplace::solver {
namespace {

// Placement-shaped random model: cover constraints (>= 1 over subsets),
// implication pairs (a >= b), and capacity constraints (<= C over
// subsets), unit objective.
Model placementShapedModel(util::Rng& rng, int nVars) {
  Model m;
  std::vector<ModelVar> vars;
  for (int i = 0; i < nVars; ++i) vars.push_back(m.addBinary());
  int nCovers = static_cast<int>(rng.range(2, 5));
  for (int c = 0; c < nCovers; ++c) {
    LinearExpr e;
    int k = static_cast<int>(rng.range(2, 5));
    for (int t = 0; t < k; ++t) e.add(1, vars[rng.below(nVars)]);
    m.addConstraint(std::move(e), Cmp::kGe, 1);
  }
  int nImpl = static_cast<int>(rng.range(1, 5));
  for (int c = 0; c < nImpl; ++c) {
    LinearExpr e;
    e.add(1, vars[rng.below(nVars)]).add(-1, vars[rng.below(nVars)]);
    m.addConstraint(std::move(e), Cmp::kGe, 0);
  }
  int nCaps = static_cast<int>(rng.range(1, 4));
  for (int c = 0; c < nCaps; ++c) {
    LinearExpr e;
    int k = static_cast<int>(rng.range(3, std::min(nVars, 8)));
    for (int t = 0; t < k; ++t) e.add(1, vars[rng.below(nVars)]);
    m.addConstraint(std::move(e), Cmp::kLe, rng.range(1, 3));
  }
  LinearExpr obj;
  for (ModelVar v : vars) obj.add(1, v);
  m.setObjective(obj);
  return m;
}

// Weighted-PB random model: coefficients up to 7 both in constraints and
// the objective, exercising the general PB propagation path.
Model weightedPbModel(util::Rng& rng, int nVars) {
  Model m;
  std::vector<ModelVar> vars;
  for (int i = 0; i < nVars; ++i) vars.push_back(m.addBinary());
  int nCons = static_cast<int>(rng.range(3, 7));
  for (int c = 0; c < nCons; ++c) {
    LinearExpr e;
    int k = static_cast<int>(rng.range(2, 6));
    for (int t = 0; t < k; ++t) {
      e.add(rng.range(1, 7), vars[rng.below(nVars)]);
    }
    if (rng.chance(0.5)) {
      m.addConstraint(std::move(e), Cmp::kGe, rng.range(2, 9));
    } else {
      m.addConstraint(std::move(e), Cmp::kLe, rng.range(3, 12));
    }
  }
  LinearExpr obj;
  for (ModelVar v : vars) obj.add(rng.range(1, 5), v);
  m.setObjective(obj);
  return m;
}

class PlacementShapedCrossCheck
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlacementShapedCrossCheck, MatchesBruteForce) {
  util::Rng rng(GetParam() * 101);
  for (int round = 0; round < 8; ++round) {
    Model m = placementShapedModel(rng, 12);
    OptResult exact = bruteForceSolve(m);
    OptResult got = Optimizer::solve(m);
    ASSERT_EQ(got.status, exact.status) << "round " << round;
    if (exact.status == OptStatus::kOptimal) {
      EXPECT_EQ(got.objective, exact.objective) << "round " << round;
      EXPECT_TRUE(m.feasible(got.assignment));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacementShapedCrossCheck,
                         ::testing::Range<std::uint64_t>(1, 13));

class WeightedPbCrossCheck : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(WeightedPbCrossCheck, MatchesBruteForce) {
  util::Rng rng(GetParam() * 211);
  for (int round = 0; round < 8; ++round) {
    Model m = weightedPbModel(rng, 11);
    OptResult exact = bruteForceSolve(m);
    OptResult got = Optimizer::solve(m);
    ASSERT_EQ(got.status, exact.status) << "round " << round;
    if (exact.status == OptStatus::kOptimal) {
      EXPECT_EQ(got.objective, exact.objective) << "round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedPbCrossCheck,
                         ::testing::Range<std::uint64_t>(1, 13));

// With a *valid* lower bound attached, results must not change (the bound
// is an optimization aid, never a semantics change).
class BoundedCrossCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BoundedCrossCheck, ValidBoundPreservesOptimum) {
  util::Rng rng(GetParam() * 307);
  for (int round = 0; round < 6; ++round) {
    Model m = placementShapedModel(rng, 10);
    OptResult exact = bruteForceSolve(m);
    if (exact.status != OptStatus::kOptimal) continue;
    // Any bound <= optimum is valid; try a few.
    for (std::int64_t delta : {0, 1, 3}) {
      Model bounded = m.clone();
      bounded.setObjectiveLowerBound(exact.objective - delta);
      OptResult got = Optimizer::solve(bounded);
      ASSERT_EQ(got.status, OptStatus::kOptimal);
      EXPECT_EQ(got.objective, exact.objective)
          << "round " << round << " delta " << delta;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundedCrossCheck,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Duplicate / complementary literal normalization (regression).
//
// The counter-based propagators assume each variable occurs at most once
// per constraint, so addPB/addCardinality must normalize multiset inputs
// under linear semantics: duplicates merge, x/¬x pairs contribute their
// min coefficient as a constant.  Before normalization was added, both
// add paths silently accepted such inputs and missed root-level
// consequences that the merged form exposes immediately.

TEST(PbNormalization, CancellingPairsDetectUnsatAtAddTime) {
  // 5x + 5¬x + 5y + 5¬y >= 12 is 10 >= 12 after cancellation: UNSAT at
  // the root, which addPB must report by returning false.
  Solver s;
  Lit x(s.newVar(), false);
  Lit y(s.newVar(), false);
  EXPECT_FALSE(s.addPB({{5, x}, {5, ~x}, {5, y}, {5, ~y}}, 12));
  EXPECT_FALSE(s.okay());
}

TEST(PbNormalization, CancellingPairsKeepSatisfiableResidual) {
  // 5x + 5¬x + 5y + 5¬y >= 10 is 10 >= 10: trivially true.
  Solver s;
  Lit x(s.newVar(), false);
  Lit y(s.newVar(), false);
  EXPECT_TRUE(s.addPB({{5, x}, {5, ~x}, {5, y}, {5, ~y}}, 10));
  EXPECT_TRUE(s.okay());
  EXPECT_EQ(s.solve(), SolveStatus::kSat);
}

TEST(PbNormalization, UnequalPairLeavesResidualOnStrongerLiteral) {
  // 7x + 3¬x >= 7  ==  3 + 4x >= 7  ==  4x >= 4: forces x at the root.
  Solver s;
  Lit x(s.newVar(), false);
  EXPECT_TRUE(s.addPB({{7, x}, {3, ~x}}, 7));
  EXPECT_FALSE(s.addClause({~x}));
  EXPECT_FALSE(s.okay());
}

TEST(PbNormalization, DuplicateCardinalityLiteralsMergeAndPropagate) {
  // x + x + y + z >= 3  ==  2x + y + z >= 3: x is forced at the root
  // (without x at most 2 is reachable), so ¬x must be rejected.
  Solver s;
  Lit x(s.newVar(), false);
  Lit y(s.newVar(), false);
  Lit z(s.newVar(), false);
  EXPECT_TRUE(s.addCardinality({x, x, y, z}, 3));
  EXPECT_FALSE(s.addClause({~x}));
  EXPECT_FALSE(s.okay());
}

TEST(PbNormalization, DuplicatePbLiteralsMerge) {
  // 2x + 1x + y >= 3  ==  3x + y >= 3: forces x.
  Solver s;
  Lit x(s.newVar(), false);
  Lit y(s.newVar(), false);
  EXPECT_TRUE(s.addPB({{2, x}, {1, x}, {1, y}}, 3));
  EXPECT_FALSE(s.addClause({~x}));
  EXPECT_FALSE(s.okay());
}

TEST(PbNormalization, ComplementaryCardinalityPairRoutesThroughPb) {
  // x + ¬x + y + z >= 3  ==  1 + y + z >= 3: forces y and z.
  Solver s;
  Lit x(s.newVar(), false);
  Lit y(s.newVar(), false);
  Lit z(s.newVar(), false);
  EXPECT_TRUE(s.addCardinality({x, ~x, y, z}, 3));
  EXPECT_FALSE(s.addClause({~y}));
  EXPECT_FALSE(s.okay());
}

// Differential battery: random multiset PB systems (duplicates and
// complementary pairs allowed) against a brute-force evaluation of the
// raw, un-normalized term lists under linear semantics.

struct RawPb {
  std::vector<std::pair<std::int64_t, Lit>> terms;
  std::int64_t bound;
};

bool multisetSat(const std::vector<RawPb>& system, std::uint32_t mask) {
  for (const RawPb& c : system) {
    std::int64_t sum = 0;
    for (const auto& [coeff, lit] : c.terms) {
      bool varTrue = (mask >> lit.var()) & 1u;
      if (varTrue != lit.sign()) sum += coeff;
    }
    if (sum < c.bound) return false;
  }
  return true;
}

bool multisetSatisfiable(int nVars, const std::vector<RawPb>& system) {
  for (std::uint32_t mask = 0; mask < (1u << nVars); ++mask) {
    if (multisetSat(system, mask)) return true;
  }
  return false;
}

class MultisetPbCrossCheck : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(MultisetPbCrossCheck, MatchesBruteForce) {
  util::Rng rng(GetParam() * 733);
  for (int round = 0; round < 40; ++round) {
    const int nVars = 6;
    std::vector<RawPb> system;
    int nCons = static_cast<int>(rng.range(2, 4));
    for (int c = 0; c < nCons; ++c) {
      RawPb raw;
      int k = static_cast<int>(rng.range(3, 6));
      for (int t = 0; t < k; ++t) {
        // Duplicates and complementary pairs arise naturally from the
        // small variable pool.
        raw.terms.push_back({rng.range(1, 4),
                             Lit(static_cast<Var>(rng.below(nVars)),
                                 rng.chance(0.5))});
      }
      raw.bound = static_cast<std::int64_t>(rng.range(1, 8));
      system.push_back(std::move(raw));
    }

    Solver s;
    for (int v = 0; v < nVars; ++v) s.newVar();
    bool addedOk = true;
    for (const RawPb& c : system) {
      if (!s.addPB(c.terms, c.bound)) {
        addedOk = false;
        break;
      }
    }
    const bool expected = multisetSatisfiable(nVars, system);
    if (!addedOk) {
      // Add-time UNSAT of a prefix implies the full system is UNSAT.
      EXPECT_FALSE(expected) << "round " << round;
      continue;
    }
    SolveStatus got = s.solve();
    ASSERT_NE(got, SolveStatus::kUnknown);
    EXPECT_EQ(got == SolveStatus::kSat, expected) << "round " << round;
    if (got == SolveStatus::kSat) {
      std::uint32_t mask = 0;
      for (int v = 0; v < nVars; ++v) {
        if (s.modelValue(static_cast<Var>(v))) mask |= (1u << v);
      }
      EXPECT_TRUE(multisetSat(system, mask)) << "round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultisetPbCrossCheck,
                         ::testing::Range<std::uint64_t>(1, 9));

class MultisetCardCrossCheck
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MultisetCardCrossCheck, MatchesBruteForce) {
  util::Rng rng(GetParam() * 977);
  for (int round = 0; round < 40; ++round) {
    const int nVars = 6;
    std::vector<RawPb> system;
    int nCons = static_cast<int>(rng.range(2, 4));
    for (int c = 0; c < nCons; ++c) {
      RawPb raw;
      int k = static_cast<int>(rng.range(3, 7));
      for (int t = 0; t < k; ++t) {
        raw.terms.push_back({1, Lit(static_cast<Var>(rng.below(nVars)),
                                    rng.chance(0.5))});
      }
      raw.bound = static_cast<std::int64_t>(rng.range(1, 5));
      system.push_back(std::move(raw));
    }

    Solver s;
    for (int v = 0; v < nVars; ++v) s.newVar();
    bool addedOk = true;
    for (const RawPb& c : system) {
      std::vector<Lit> lits;
      for (const auto& [coeff, lit] : c.terms) {
        (void)coeff;
        lits.push_back(lit);
      }
      if (!s.addCardinality(std::move(lits), static_cast<int>(c.bound))) {
        addedOk = false;
        break;
      }
    }
    const bool expected = multisetSatisfiable(nVars, system);
    if (!addedOk) {
      EXPECT_FALSE(expected) << "round " << round;
      continue;
    }
    SolveStatus got = s.solve();
    ASSERT_NE(got, SolveStatus::kUnknown);
    EXPECT_EQ(got == SolveStatus::kSat, expected) << "round " << round;
    if (got == SolveStatus::kSat) {
      std::uint32_t mask = 0;
      for (int v = 0; v < nVars; ++v) {
        if (s.modelValue(static_cast<Var>(v))) mask |= (1u << v);
      }
      EXPECT_TRUE(multisetSat(system, mask)) << "round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultisetCardCrossCheck,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace ruleplace::solver
