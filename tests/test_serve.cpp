// Serve-subsystem tests: the line-JSON parser, the protocol layer, and the
// daemon's concurrency contract.
//
// The protocol invariants pinned here:
//   * malformed lines are answered with {"ok":false,...} and touch no state;
//   * state-mutating events carry strictly increasing seq numbers —
//     out-of-order or repeated seqs are rejected at ingest;
//   * a query racing a batch only ever observes a fully committed
//     placement (never a half-applied batch);
//   * shutdown mid-batch drains cleanly — the final state is a committed,
//     verifiable placement.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/verify.h"
#include "serve/churn_gen.h"
#include "serve/daemon.h"
#include "serve/jsonl.h"
#include "serve/protocol.h"

namespace ruleplace::serve {
namespace {

// ---- jsonl ----------------------------------------------------------------

TEST(Jsonl, ParsesScalarsArraysAndObjects) {
  const JsonValue v = JsonValue::parse(
      R"({"a":1,"b":-2.5,"c":"x\n\"y\"","d":[true,false,null],"e":{}})");
  ASSERT_EQ(v.kind(), JsonValue::Kind::kObject);
  EXPECT_EQ(v.find("a")->asInt(), 1);
  EXPECT_DOUBLE_EQ(v.find("b")->asDouble(), -2.5);
  EXPECT_EQ(v.find("c")->asString(), "x\n\"y\"");
  const auto& arr = v.find("d")->asArray();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_TRUE(arr[0].asBool());
  EXPECT_FALSE(arr[1].asBool());
  EXPECT_EQ(arr[2].kind(), JsonValue::Kind::kNull);
  EXPECT_EQ(v.find("e")->asObject().size(), 0u);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Jsonl, UnicodeEscapesAndSurrogatePairs) {
  EXPECT_EQ(JsonValue::parse(R"("Aé")").asString(), "A\xc3\xa9");
  // U+1F600 as a surrogate pair.
  EXPECT_EQ(JsonValue::parse(R"("😀")").asString(),
            "\xf0\x9f\x98\x80");
}

TEST(Jsonl, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",           "{",        "[1,]",       "{\"a\":}",
      "{\"a\":1,}", "01",       "1 2",        "\"unterminated",
      "nul",        "{\"a\":1}{\"b\":2}",     "\"\x01\"",
      "{\"dup\":1,\"dup\":2}",  R"("\ud83d")",  // lone surrogate
  };
  for (const char* doc : bad) {
    EXPECT_THROW(JsonValue::parse(doc), JsonError) << doc;
  }
}

TEST(Jsonl, DepthIsBounded) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  EXPECT_THROW(JsonValue::parse(deep), JsonError);
}

// ---- protocol -------------------------------------------------------------

ChurnConfig smallChurn() {
  ChurnConfig c;
  c.fatTreeK = 4;
  c.switchCapacity = 128;
  c.basePolicies = 8;
  c.rulesPerPolicy = 4;
  c.seed = 11;
  return c;
}

TEST(Protocol, ParsesInstallRerouteCapacityQuery) {
  io::Scenario scenario;
  churnScenario(smallChurn(), scenario);
  const NameIndex names(scenario.graph);

  Request r = parseRequest(
      R"({"op":"install","seq":3,"ingress":0,"egress":5,)"
      R"("rules":["permit src 10.0.0.0/8","drop src 10.0.0.0/8"]})",
      names);
  ASSERT_EQ(r.kind, RequestKind::kEvent);
  EXPECT_EQ(r.event.kind, EventKind::kInstall);
  EXPECT_EQ(r.event.seq, 3);
  EXPECT_EQ(r.event.ingress, 0);
  EXPECT_EQ(r.event.egress, 5);
  EXPECT_EQ(r.event.policy.size(), 2);

  r = parseRequest(R"({"op":"reroute","seq":4,"policy":2,"egress":1})",
                   names);
  ASSERT_EQ(r.kind, RequestKind::kEvent);
  EXPECT_EQ(r.event.kind, EventKind::kReroute);
  EXPECT_EQ(r.event.policyId, 2);

  r = parseRequest(R"({"op":"capacity","seq":5,"switch":0,"capacity":9})",
                   names);
  ASSERT_EQ(r.kind, RequestKind::kEvent);
  EXPECT_EQ(r.event.kind, EventKind::kCapacity);
  EXPECT_EQ(r.event.capacity, 9);

  r = parseRequest(R"({"op":"query","what":"stats"})", names);
  EXPECT_EQ(r.kind, RequestKind::kQuery);
  EXPECT_EQ(r.what, "stats");
}

TEST(Protocol, RejectsMalformedRequests) {
  io::Scenario scenario;
  churnScenario(smallChurn(), scenario);
  const NameIndex names(scenario.graph);
  const char* bad[] = {
      R"({"seq":1})",                                  // no op
      R"({"op":"install","seq":1})",                   // missing fields
      R"({"op":"install","ingress":0,"egress":1,"rules":["drop raw 1*"]})",
      R"({"op":"install","seq":-1,"ingress":0,"egress":1,"rules":["drop raw 1*"]})",
      R"({"op":"install","seq":1,"ingress":"nosuch","egress":1,"rules":["drop raw 1*"]})",
      R"({"op":"install","seq":1,"ingress":0,"egress":1,"rules":[]})",
      R"({"op":"install","seq":1,"ingress":0,"egress":1,"rules":["frobnicate"]})",
      R"({"op":"install","seq":1,"ingress":9999,"egress":1,"rules":["drop raw 1*"]})",
      R"({"op":"reroute","seq":1,"policy":0})",        // no egress
      R"({"op":"capacity","seq":1,"switch":0,"capacity":-4})",
      R"({"op":"frobnicate"})",
  };
  for (const char* line : bad) {
    EXPECT_THROW(parseRequest(line, names), std::exception) << line;
  }
}

// ---- daemon ---------------------------------------------------------------

bool okResponse(const std::string& r) {
  return r.rfind("{\"ok\":true", 0) == 0;
}

TEST(ServeDaemon, MalformedLinesAnswerErrorAndTouchNoState) {
  io::Scenario scenario;
  churnScenario(smallChurn(), scenario);
  DaemonOptions opts;
  Daemon daemon(scenario, opts);

  const auto before = daemon.compose();
  for (const char* line :
       {"not json at all", "{\"op\":\"install\",\"seq\":0}",
        "{\"op\":\"reroute\",\"seq\":0,\"policy\":9999,\"egress\":0}",
        "[]", "{\"op\":\"query\",\"what\":\"nosuch\"}"}) {
    const std::string r = daemon.handleLine(line);
    EXPECT_FALSE(okResponse(r)) << line << " -> " << r;
  }
  daemon.flush();
  const auto after = daemon.compose();
  EXPECT_TRUE(before.placement == after.placement);
  EXPECT_EQ(daemon.stats().totals.committed, 0);
}

TEST(ServeDaemon, OutOfOrderSequenceNumbersAreRejected) {
  io::Scenario scenario;
  churnScenario(smallChurn(), scenario);
  Daemon daemon(scenario, {});

  EXPECT_TRUE(okResponse(daemon.handleLine(
      R"({"op":"reroute","seq":5,"policy":0,"egress":3})")));
  // Repeated and stale seqs bounce; the daemon's state still advances for
  // fresh ones.
  EXPECT_FALSE(okResponse(daemon.handleLine(
      R"({"op":"reroute","seq":5,"policy":1,"egress":3})")));
  EXPECT_FALSE(okResponse(daemon.handleLine(
      R"({"op":"reroute","seq":2,"policy":1,"egress":3})")));
  EXPECT_TRUE(okResponse(daemon.handleLine(
      R"({"op":"reroute","seq":6,"policy":1,"egress":3})")));
  daemon.flush();
  EXPECT_EQ(daemon.stats().totals.committed, 2);
}

TEST(ServeDaemon, QueryDuringBatchSeesOnlyCommittedState) {
  io::Scenario scenario;
  ChurnConfig cfg = smallChurn();
  cfg.basePolicies = 12;
  churnScenario(cfg, scenario);
  DaemonOptions opts;
  opts.maxBatch = 4;
  Daemon daemon(scenario, opts);

  // Hammer queries from a second thread while the ingest thread floods
  // reroutes.  EVERY composed state a query sees must be internally
  // consistent: problem and placement line up and verify — a half-applied
  // batch would break verification (rules of a policy mid-move).
  std::atomic<bool> done{false};
  std::atomic<int> verified{0};
  std::atomic<int> broken{0};
  std::thread prober([&] {
    while (!done.load(std::memory_order_acquire)) {
      const Daemon::Composed c = daemon.compose();
      if (core::verifyPlacement(c.problem, c.placement).ok) {
        verified.fetch_add(1, std::memory_order_relaxed);
      } else {
        broken.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  const std::vector<std::string> lines = churnLines(cfg, 0, 120);
  for (const std::string& line : lines) daemon.handleLine(line);
  daemon.flush();
  done.store(true, std::memory_order_release);
  prober.join();

  EXPECT_EQ(broken.load(), 0);
  EXPECT_GT(verified.load(), 0);
  const Daemon::Stats st = daemon.stats();
  EXPECT_GT(st.totals.committed, 0);
  EXPECT_GT(st.totals.batches, 0);
}

TEST(ServeDaemon, ShutdownMidBatchDrainsCleanly) {
  io::Scenario scenario;
  ChurnConfig cfg = smallChurn();
  churnScenario(cfg, scenario);
  DaemonOptions opts;
  opts.debounceSeconds = -1.0;  // manual drain: the queue holds everything
  Daemon daemon(scenario, opts);

  const std::vector<std::string> lines = churnLines(cfg, 0, 30);
  for (const std::string& line : lines) daemon.handleLine(line);
  EXPECT_GT(daemon.stats().queueDepth, 0u);  // genuinely mid-batch

  const std::string r = daemon.handleLine(R"({"op":"shutdown"})");
  EXPECT_TRUE(okResponse(r));
  EXPECT_TRUE(daemon.stopped());
  // Everything queued was resolved — committed or failed, never dropped
  // half-way — and the final placement verifies.
  const Daemon::Stats st = daemon.stats();
  EXPECT_EQ(st.queueDepth, 0u);
  const Daemon::Composed c = daemon.compose();
  EXPECT_TRUE(core::verifyPlacement(c.problem, c.placement).ok);
  // A daemon that has shut down rejects further lines.
  EXPECT_FALSE(okResponse(
      daemon.handleLine(R"({"op":"reroute","seq":999,"policy":0,"egress":1})")));
}

TEST(ServeDaemon, CoalesceAllReplayMatchesOneShotInstall) {
  // The serve-smoke contract: an installs-only trace replayed in
  // coalesce-all mode ends bit-identical to ONE session install of the
  // whole end state over the base deployment.
  io::Scenario scenario;
  ChurnConfig cfg = smallChurn();
  cfg.installWeight = 1.0;
  cfg.rerouteWeight = 0.0;
  cfg.capacityWeight = 0.0;
  churnScenario(cfg, scenario);
  DaemonOptions opts;
  opts.debounceSeconds = -1.0;
  opts.maxBatch = static_cast<std::size_t>(-1);
  Daemon daemon(scenario, opts);

  for (const std::string& line : churnLines(cfg, 0, 12)) {
    EXPECT_TRUE(okResponse(daemon.handleLine(line)));
  }
  daemon.flush();
  EXPECT_EQ(daemon.stats().totals.committed, 12);
  EXPECT_EQ(daemon.oneShotDivergence(), "");
}

TEST(ServeDaemon, MultiShardChurnStaysVerified) {
  io::Scenario scenario;
  ChurnConfig cfg = smallChurn();
  cfg.capacityWeight = 0.0;  // capacity events need one shard
  churnScenario(cfg, scenario);
  DaemonOptions opts;
  opts.shards = 3;
  opts.workers = 3;
  Daemon daemon(scenario, opts);

  for (const std::string& line : churnLines(cfg, 0, 60)) {
    daemon.handleLine(line);
  }
  daemon.flush();
  const Daemon::Stats st = daemon.stats();
  EXPECT_EQ(st.totals.committed + st.totals.failed, 60);
  const Daemon::Composed c = daemon.compose();
  EXPECT_TRUE(core::verifyPlacement(c.problem, c.placement).ok);
  // The shard capacity shares must sum to the real capacities — the union
  // of independent shard placements can then never exceed a switch.
  for (topo::SwitchId sw = 0; sw < scenario.graph.switchCount(); ++sw) {
    EXPECT_EQ(c.problem.capacityOf(sw), scenario.graph.sw(sw).capacity);
    EXPECT_LE(c.placement.usedCapacity(sw), scenario.graph.sw(sw).capacity);
  }
}

}  // namespace
}  // namespace ruleplace::serve
