// Tests for the CDCL pseudo-Boolean solver and the 0-1 ILP optimizer —
// including randomized cross-checks against the brute-force reference.

#include <gtest/gtest.h>

#include "solver/bruteforce.h"
#include "solver/model.h"
#include "solver/optimize.h"
#include "solver/sat.h"
#include "util/rng.h"

namespace ruleplace::solver {
namespace {

Lit pos(Var v) { return Lit(v, false); }
Lit neg(Var v) { return Lit(v, true); }

TEST(Sat, TrivialSatAndModel) {
  Solver s;
  Var a = s.newVar();
  Var b = s.newVar();
  ASSERT_TRUE(s.addClause({pos(a), pos(b)}));
  ASSERT_TRUE(s.addClause({neg(a)}));
  ASSERT_EQ(s.solve(), SolveStatus::kSat);
  EXPECT_FALSE(s.modelValue(a));
  EXPECT_TRUE(s.modelValue(b));
}

TEST(Sat, EmptyClauseIsUnsat) {
  Solver s;
  Var a = s.newVar();
  ASSERT_TRUE(s.addClause({pos(a)}));
  EXPECT_FALSE(s.addClause({neg(a)}));
  EXPECT_EQ(s.solve(), SolveStatus::kUnsat);
}

TEST(Sat, UnsatViaResolution) {
  Solver s;
  Var a = s.newVar();
  Var b = s.newVar();
  s.addClause({pos(a), pos(b)});
  s.addClause({pos(a), neg(b)});
  s.addClause({neg(a), pos(b)});
  s.addClause({neg(a), neg(b)});
  EXPECT_EQ(s.solve(), SolveStatus::kUnsat);
}

TEST(Sat, TautologyAndDuplicatesHandled) {
  Solver s;
  Var a = s.newVar();
  ASSERT_TRUE(s.addClause({pos(a), neg(a)}));  // tautology: dropped
  ASSERT_TRUE(s.addClause({pos(a), pos(a)}));  // duplicate: unit
  ASSERT_EQ(s.solve(), SolveStatus::kSat);
  EXPECT_TRUE(s.modelValue(a));
}

TEST(Sat, CardinalityAtLeast) {
  Solver s;
  std::vector<Lit> lits;
  for (int i = 0; i < 5; ++i) lits.push_back(pos(s.newVar()));
  ASSERT_TRUE(s.addCardinality(lits, 3));
  ASSERT_EQ(s.solve(), SolveStatus::kSat);
  int count = 0;
  for (int i = 0; i < 5; ++i) count += s.modelValue(i) ? 1 : 0;
  EXPECT_GE(count, 3);
}

TEST(Sat, CardinalityConflictsWithForcedFalse) {
  Solver s;
  std::vector<Lit> lits;
  for (int i = 0; i < 4; ++i) lits.push_back(pos(s.newVar()));
  ASSERT_TRUE(s.addCardinality(lits, 3));
  s.addClause({neg(0)});
  s.addClause({neg(1)});
  EXPECT_EQ(s.solve(), SolveStatus::kUnsat);
}

TEST(Sat, CardinalityPropagatesAtThreshold) {
  Solver s;
  std::vector<Lit> lits;
  for (int i = 0; i < 4; ++i) lits.push_back(pos(s.newVar()));
  ASSERT_TRUE(s.addCardinality(lits, 3));
  s.addClause({neg(0)});
  ASSERT_EQ(s.solve(), SolveStatus::kSat);
  EXPECT_TRUE(s.modelValue(1));
  EXPECT_TRUE(s.modelValue(2));
  EXPECT_TRUE(s.modelValue(3));
}

TEST(Sat, CardinalityOverCommittedAtAddTime) {
  Solver s;
  std::vector<Lit> lits{pos(s.newVar()), pos(s.newVar())};
  EXPECT_FALSE(s.addCardinality(lits, 3));
  EXPECT_EQ(s.solve(), SolveStatus::kUnsat);
}

TEST(Sat, PseudoBooleanPropagation) {
  Solver s;
  Var a = s.newVar();
  Var b = s.newVar();
  Var c = s.newVar();
  // 3a + 2b + 1c >= 4 and a false -> impossible (2+1 < 4).
  ASSERT_TRUE(s.addPB({{3, pos(a)}, {2, pos(b)}, {1, pos(c)}}, 4));
  s.addClause({neg(a)});
  EXPECT_EQ(s.solve(), SolveStatus::kUnsat);
}

TEST(Sat, PseudoBooleanForcesBigCoefficient) {
  Solver s;
  Var a = s.newVar();
  Var b = s.newVar();
  Var c = s.newVar();
  // 5a + 2b + 2c >= 6: a must be true.
  ASSERT_TRUE(s.addPB({{5, pos(a)}, {2, pos(b)}, {2, pos(c)}}, 6));
  ASSERT_EQ(s.solve(), SolveStatus::kSat);
  EXPECT_TRUE(s.modelValue(a));
}

TEST(Sat, LubySequence) {
  EXPECT_EQ(luby(0), 1);
  EXPECT_EQ(luby(1), 1);
  EXPECT_EQ(luby(2), 2);
  EXPECT_EQ(luby(3), 1);
  EXPECT_EQ(luby(4), 1);
  EXPECT_EQ(luby(5), 2);
  EXPECT_EQ(luby(6), 4);
}

TEST(Sat, PigeonholeIsUnsat) {
  // 5 pigeons, 4 holes: classic hard-ish UNSAT exercise for learning.
  const int pigeons = 5;
  const int holes = 4;
  Solver s;
  std::vector<std::vector<Var>> x(pigeons, std::vector<Var>(holes));
  for (auto& row : x) {
    for (auto& v : row) v = s.newVar();
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> atLeastOne;
    for (int h = 0; h < holes; ++h) atLeastOne.push_back(pos(x[p][h]));
    s.addClause(atLeastOne);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        s.addClause({neg(x[p1][h]), neg(x[p2][h])});
      }
    }
  }
  EXPECT_EQ(s.solve(), SolveStatus::kUnsat);
  EXPECT_GT(s.stats().conflicts, 0);
}

TEST(Sat, BudgetReturnsUnknown) {
  // A larger pigeonhole with a 1-conflict budget cannot finish.
  const int pigeons = 8;
  const int holes = 7;
  Solver s;
  std::vector<std::vector<Var>> x(pigeons, std::vector<Var>(holes));
  for (auto& row : x) {
    for (auto& v : row) v = s.newVar();
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> any;
    for (int h = 0; h < holes; ++h) any.push_back(pos(x[p][h]));
    s.addClause(any);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        s.addClause({neg(x[p1][h]), neg(x[p2][h])});
      }
    }
  }
  EXPECT_EQ(s.solve(Budget::conflicts(1)), SolveStatus::kUnknown);
}

// ---- Model / Optimizer -----------------------------------------------------

TEST(Model, EvaluateAndFeasible) {
  Model m;
  ModelVar a = m.addBinary("a");
  ModelVar b = m.addBinary("b");
  LinearExpr e;
  e.add(2, a).add(3, b);
  m.addConstraint(e, Cmp::kLe, 4);
  EXPECT_TRUE(m.feasible({true, false}));
  EXPECT_TRUE(m.feasible({false, true}));
  EXPECT_FALSE(m.feasible({true, true}));
  EXPECT_EQ(m.constraints()[0].expr.evaluate({true, true}), 5);
}

TEST(Model, CanonicalizeMergesTerms) {
  LinearExpr e;
  e.add(2, 0).add(3, 0).add(-5, 0).add(1, 1);
  e.canonicalize();
  ASSERT_EQ(e.terms().size(), 1u);  // var 0 cancels out entirely
  EXPECT_EQ(e.terms()[0].second, 1);
}

TEST(Model, FixVariable) {
  Model m;
  ModelVar a = m.addBinary();
  m.fixVariable(a, true);
  auto r = Optimizer::solveSat(m);
  ASSERT_TRUE(r.hasSolution());
  EXPECT_TRUE(r.assignment[0]);
}

TEST(Optimizer, MinimizesSimpleCover) {
  // Cover two sets with minimum elements: x0 covers both.
  Model m;
  ModelVar x0 = m.addBinary();
  ModelVar x1 = m.addBinary();
  ModelVar x2 = m.addBinary();
  LinearExpr c1;
  c1.add(1, x0).add(1, x1);
  m.addConstraint(c1, Cmp::kGe, 1);
  LinearExpr c2;
  c2.add(1, x0).add(1, x2);
  m.addConstraint(c2, Cmp::kGe, 1);
  LinearExpr obj;
  obj.add(1, x0).add(1, x1).add(1, x2);
  m.setObjective(obj);
  auto r = Optimizer::solve(m);
  EXPECT_EQ(r.status, OptStatus::kOptimal);
  EXPECT_EQ(r.objective, 1);
  EXPECT_TRUE(r.assignment[0]);
}

TEST(Optimizer, DetectsInfeasibility) {
  Model m;
  ModelVar a = m.addBinary();
  LinearExpr e;
  e.add(1, a);
  m.addConstraint(e, Cmp::kGe, 1);
  m.addConstraint(e, Cmp::kLe, 0);
  auto r = Optimizer::solve(m);
  EXPECT_EQ(r.status, OptStatus::kInfeasible);
  EXPECT_FALSE(r.hasSolution());
}

TEST(Optimizer, HandlesEqualityAndNegativeCoefficients) {
  Model m;
  ModelVar a = m.addBinary();
  ModelVar b = m.addBinary();
  ModelVar c = m.addBinary();
  // a - b == 0 (a <-> b), a + b + c == 2.
  LinearExpr e1;
  e1.add(1, a).add(-1, b);
  m.addConstraint(e1, Cmp::kEq, 0);
  LinearExpr e2;
  e2.add(1, a).add(1, b).add(1, c);
  m.addConstraint(e2, Cmp::kEq, 2);
  LinearExpr obj;
  obj.add(1, c);  // prefer c = 0 -> a = b = 1
  m.setObjective(obj);
  auto r = Optimizer::solve(m);
  ASSERT_EQ(r.status, OptStatus::kOptimal);
  EXPECT_EQ(r.objective, 0);
  EXPECT_TRUE(r.assignment[0]);
  EXPECT_TRUE(r.assignment[1]);
  EXPECT_FALSE(r.assignment[2]);
}

TEST(Optimizer, ObjectiveWithConstantOffset) {
  Model m;
  ModelVar a = m.addBinary();
  LinearExpr e;
  e.add(1, a);
  m.addConstraint(e, Cmp::kGe, 1);
  LinearExpr obj;
  obj.add(5, a).addConstant(7);
  m.setObjective(obj);
  auto r = Optimizer::solve(m);
  ASSERT_EQ(r.status, OptStatus::kOptimal);
  EXPECT_EQ(r.objective, 12);
}

TEST(Optimizer, SatOnlyIgnoresObjective) {
  Model m;
  ModelVar a = m.addBinary();
  LinearExpr obj;
  obj.add(1, a);
  m.setObjective(obj);
  auto r = Optimizer::solveSat(m);
  EXPECT_EQ(r.status, OptStatus::kOptimal);  // one solve, no tightening
  EXPECT_TRUE(r.hasSolution());
}

TEST(BruteForce, RejectsOversizedModels) {
  Model m;
  for (int i = 0; i < 30; ++i) m.addBinary();
  EXPECT_THROW(bruteForceSolve(m, 24), std::invalid_argument);
}

// ---- randomized cross-check vs brute force --------------------------------

class RandomIlpCrossCheck : public ::testing::TestWithParam<std::uint64_t> {};

Model randomModel(util::Rng& rng, int nVars) {
  Model m;
  for (int i = 0; i < nVars; ++i) m.addBinary();
  int nCons = static_cast<int>(rng.range(2, 8));
  for (int c = 0; c < nCons; ++c) {
    LinearExpr e;
    int nTerms = static_cast<int>(rng.range(1, std::min(nVars, 5)));
    for (int t = 0; t < nTerms; ++t) {
      e.add(rng.range(-3, 3), static_cast<ModelVar>(rng.below(nVars)));
    }
    Cmp cmp = static_cast<Cmp>(rng.below(3));
    m.addConstraint(std::move(e), cmp, rng.range(-2, 4));
  }
  LinearExpr obj;
  for (int i = 0; i < nVars; ++i) {
    obj.add(rng.range(0, 4), static_cast<ModelVar>(i));
  }
  m.setObjective(obj);
  return m;
}

TEST_P(RandomIlpCrossCheck, MatchesBruteForce) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    Model m = randomModel(rng, 10);
    OptResult exact = bruteForceSolve(m);
    OptResult cdcl = Optimizer::solve(m);
    ASSERT_EQ(cdcl.status, exact.status) << "round " << round;
    if (exact.status == OptStatus::kOptimal) {
      EXPECT_EQ(cdcl.objective, exact.objective) << "round " << round;
      EXPECT_TRUE(m.feasible(cdcl.assignment));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomIlpCrossCheck,
                         ::testing::Range<std::uint64_t>(1, 16));

class RandomSatCrossCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomSatCrossCheck, FeasibilityMatchesBruteForce) {
  util::Rng rng(GetParam() * 77);
  for (int round = 0; round < 10; ++round) {
    Model m = randomModel(rng, 12);
    OptResult exact = bruteForceSolve(m);
    OptResult sat = Optimizer::solveSat(m);
    bool exactFeasible = exact.status == OptStatus::kOptimal;
    EXPECT_EQ(sat.hasSolution(), exactFeasible) << "round " << round;
    if (sat.hasSolution()) {
      EXPECT_TRUE(m.feasible(sat.assignment));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSatCrossCheck,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace ruleplace::solver
