// util::Rng: determinism and independence of the split()/stream() API the
// fuzz orchestrator and the parallel placer rely on.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/rng.h"

namespace ruleplace::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(7), b(7);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(ca.next(), cb.next());
  // Parent advanced identically too.
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SuccessiveSplitsDiffer) {
  Rng root(1);
  Rng c1 = root.split();
  Rng c2 = root.split();
  EXPECT_NE(c1.next(), c2.next());
}

TEST(Rng, StreamDoesNotMutateParent) {
  Rng a(9), b(9);
  (void)a.stream(0);
  (void)a.stream(1);
  (void)a.stream(12345);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, StreamIsIdempotent) {
  Rng root(3);
  Rng s1 = root.stream(17);
  Rng s2 = root.stream(17);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(s1.next(), s2.next());
}

TEST(Rng, DistinctStreamsAreDistinct) {
  // First outputs of many adjacent streams must all differ (no collisions
  // from the sequential stream ids the fuzz orchestrator uses).
  Rng root(5);
  std::set<std::uint64_t> firsts;
  for (std::uint64_t id = 0; id < 1000; ++id) {
    firsts.insert(root.stream(id).next());
  }
  EXPECT_EQ(firsts.size(), 1000u);
}

TEST(Rng, StreamsDoNotCorrelateWithParent) {
  // Crude independence check: child outputs should not reproduce the
  // parent's output sequence.
  Rng root(11);
  Rng child = root.stream(0);
  std::set<std::uint64_t> parentOuts;
  Rng parentCopy(11);
  for (int i = 0; i < 100; ++i) parentOuts.insert(parentCopy.next());
  int hits = 0;
  for (int i = 0; i < 100; ++i) {
    if (parentOuts.count(child.next()) != 0) ++hits;
  }
  EXPECT_EQ(hits, 0);
}

TEST(Rng, BelowStaysInBound) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
    EXPECT_LT(rng.below(1), 1u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(4);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    std::int64_t v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    sawLo |= v == -2;
    sawHi |= v == 2;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, WeightedRespectsZeroWeights) {
  Rng rng(6);
  std::vector<double> w{0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) EXPECT_EQ(rng.weighted(w), 1u);
}

}  // namespace
}  // namespace ruleplace::util
