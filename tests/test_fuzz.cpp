// Tests for the differential fuzzing subsystem: generator determinism,
// oracle mode matrix, clean runs, injected-bug detection (mutation testing
// for the oracle), the delta-debugging minimizer, and reproducer I/O.

#include <gtest/gtest.h>

#include <sstream>

#include "fuzz/generator.h"
#include "fuzz/minimizer.h"
#include "fuzz/mutator.h"
#include "fuzz/oracle.h"
#include "fuzz/orchestrator.h"
#include "fuzz/reproducer.h"
#include "io/scenario.h"

namespace ruleplace::fuzz {
namespace {

int totalRules(const FuzzCase& fc) {
  int n = 0;
  for (const auto& q : fc.policies) n += static_cast<int>(q.size());
  return n;
}

/// Small conflict budget keeps tests fast; cases are tiny anyway.
OracleOptions fastOracle() {
  OracleOptions opts;
  opts.conflictBudget = 200000;
  opts.jobsSweep = {1, 2};
  opts.bruteMaxVars = 14;
  return opts;
}

TEST(FuzzGenerator, DeterministicFromSeed) {
  for (std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
    FuzzCase a = generateCase(seed);
    FuzzCase b = generateCase(seed);
    EXPECT_EQ(io::formatScenario(a.problem()), io::formatScenario(b.problem()))
        << "seed " << seed;
  }
}

TEST(FuzzGenerator, CasesValidateAndRoundTrip) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    FuzzCase fc = generateCase(seed);
    ASSERT_NO_THROW(fc.problem().validate()) << "seed " << seed;
    const std::string text = io::formatScenario(fc.problem());
    FuzzCase back = caseFromScenarioText(text);
    EXPECT_EQ(io::formatScenario(back.problem()), text) << "seed " << seed;
  }
}

TEST(FuzzGenerator, SamplesEveryTopologyFamily) {
  bool seen[4] = {false, false, false, false};
  util::Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    seen[static_cast<int>(sampleParams(rng).topology)] = true;
  }
  EXPECT_TRUE(seen[0] && seen[1] && seen[2] && seen[3]);
}

TEST(FuzzOracle, ModeMatrixRespectsEncoderConstraints) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    FuzzCase fc = generateCase(seed);
    bool hasTraffic = false;
    for (const auto& ip : fc.routing) {
      for (const auto& p : ip.paths) hasTraffic |= p.traffic.has_value();
    }
    const auto modes = modeMatrix(fc);
    ASSERT_FALSE(modes.empty());
    // The reference plain-ILP mode leads the matrix.
    EXPECT_FALSE(modes.front().merge);
    EXPECT_FALSE(modes.front().satOnly);
    EXPECT_FALSE(modes.front().incremental());
    for (const auto& m : modes) {
      if (m.merge && !m.satOnly) {
        EXPECT_EQ(m.objective, core::ObjectiveKind::kTotalRules);
      }
      if (m.slice) EXPECT_TRUE(hasTraffic);
      if (m.incremental()) {
        EXPECT_LT(m.basePolicies, static_cast<int>(fc.policies.size()));
      }
    }
  }
}

TEST(FuzzOracle, ModeConfigStringRoundTrips) {
  const FuzzCase fc = generateCase(3);
  for (const ModeConfig& mode : modeMatrix(fc)) {
    auto back = ModeConfig::parse(mode.toString());
    ASSERT_TRUE(back.has_value()) << mode.toString();
    EXPECT_EQ(back->toString(), mode.toString());
  }
  EXPECT_FALSE(ModeConfig::parse("gibberish").has_value());
}

// The persistent-session differential (ViolationKind::kIncrementalSolver)
// must actually run on incremental modes and on clean cases find nothing:
// replay is deterministic, one-shot installs match scratch solves, and the
// chunked session never beats the unrestricted optimum.
TEST(FuzzOracle, IncrementalSessionDifferentialRunsClean) {
  const OracleOptions opts = fastOracle();
  std::int64_t sessionChecks = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    FuzzCase fc = generateCase(seed);
    for (const ModeConfig& mode : modeMatrix(fc)) {
      if (!mode.incremental()) continue;
      OracleReport report = checkCase(fc, mode, opts);
      EXPECT_TRUE(report.ok())
          << "seed " << seed << " mode " << mode.toString() << ":\n"
          << report.summary();
      sessionChecks += report.counters.incrementalSolverChecks;
    }
  }
  EXPECT_GT(sessionChecks, 0) << "no incremental mode exercised the "
                                 "persistent-session differential";
}

// Portfolio modes ride the standard jobs sweep: the race's priority
// arbitration (not wall-clock) picks the winner, so placements must stay
// bit-identical across thread counts.
TEST(FuzzOracle, PortfolioModesAreCleanAcrossJobsSweep) {
  OracleOptions opts = fastOracle();
  opts.jobsSweep = {1, 2, 4};
  std::int64_t portfolioModes = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    FuzzCase fc = generateCase(seed);
    for (const ModeConfig& mode : modeMatrix(fc)) {
      if (!mode.portfolio) continue;
      ++portfolioModes;
      OracleReport report = checkCase(fc, mode, opts);
      EXPECT_TRUE(report.ok())
          << "seed " << seed << " mode " << mode.toString() << ":\n"
          << report.summary();
    }
  }
  EXPECT_GT(portfolioModes, 0);
}

TEST(FuzzOracle, CleanCasesProduceNoViolations) {
  const OracleOptions opts = fastOracle();
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    FuzzCase fc = generateCase(seed);
    OracleReport report = checkAllModes(fc, {}, opts);
    EXPECT_TRUE(report.ok()) << "seed " << seed << ":\n" << report.summary();
  }
}

TEST(FuzzOrchestrator, ShortRunIsCleanAndDeterministicAcrossWorkers) {
  FuzzConfig config;
  config.seed = 11;
  config.iterations = 4;
  config.extraModesPerCase = 2;
  config.minimize = false;
  config.oracle = fastOracle();

  FuzzSummary one = runFuzz(config);
  EXPECT_TRUE(one.ok()) << one.toString();
  EXPECT_EQ(one.iterations, 4);

  config.workers = 2;
  FuzzSummary two = runFuzz(config);
  EXPECT_TRUE(two.ok()) << two.toString();
  // Per-iteration RNG streams make results independent of scheduling.
  EXPECT_EQ(one.casesChecked, two.casesChecked);
  EXPECT_EQ(one.modesChecked, two.modesChecked);
  EXPECT_EQ(one.counters.solves, two.counters.solves);
  EXPECT_EQ(one.counters.semanticChecks, two.counters.semanticChecks);
  EXPECT_EQ(one.counters.bruteChecks, two.counters.bruteChecks);
}

TEST(FuzzMutator, MutatedCasesStayValid) {
  util::Rng rng(5);
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    FuzzCase fc = generateCase(seed);
    FuzzCase mutated = mutateCase(fc, rng);
    EXPECT_NO_THROW(mutated.problem().validate()) << "seed " << seed;
    // Copy-on-write: the original's shared graph must be untouched.
    EXPECT_NO_THROW(fc.problem().validate()) << "seed " << seed;
  }
}

// The acceptance-criterion test: a deliberately injected placer bug must be
// caught by the oracle and the triggering case minimized to <= 5 rules.
TEST(FuzzInjection, DroppedRuleIsCaughtAndMinimizedToFewRules) {
  OracleOptions opts = fastOracle();
  bool caught = false;
  for (std::uint64_t seed = 0; seed < 40 && !caught; ++seed) {
    FuzzCase fc = generateCase(seed);
    for (const ModeConfig& mode : modeMatrix(fc)) {
      OracleOptions bugged = opts;
      bugged.hooks.afterPlace = [](core::PlaceOutcome& outcome,
                                   const ModeConfig&, int) {
        injectBug(outcome, BugKind::kDropInstalledRule);
      };
      if (checkCase(fc, mode, bugged).ok()) continue;
      caught = true;

      MinimizeStats stats;
      FuzzCase tiny = minimizeCase(
          fc,
          [&](const FuzzCase& c) { return !checkCase(c, mode, bugged).ok(); },
          &stats, 500);
      EXPECT_LE(totalRules(tiny), 5) << stats.toString();
      EXPECT_FALSE(checkCase(tiny, mode, bugged).ok());
      // The fix (no injection) must make the minimized case pass again.
      EXPECT_TRUE(checkCase(tiny, mode, opts).ok());
      break;
    }
  }
  EXPECT_TRUE(caught) << "no seed triggered the injected bug";
}

TEST(FuzzInjection, FlippedActionIsCaught) {
  OracleOptions opts = fastOracle();
  bool caught = false;
  for (std::uint64_t seed = 0; seed < 40 && !caught; ++seed) {
    FuzzCase fc = generateCase(seed);
    for (const ModeConfig& mode : modeMatrix(fc)) {
      OracleOptions bugged = opts;
      bugged.hooks.afterPlace = [](core::PlaceOutcome& outcome,
                                   const ModeConfig&, int) {
        injectBug(outcome, BugKind::kFlipAction);
      };
      if (!checkCase(fc, mode, bugged).ok()) {
        caught = true;
        break;
      }
    }
  }
  EXPECT_TRUE(caught);
}

TEST(FuzzMinimizer, ShrinksToTargetRule) {
  // Find a case with a healthy rule count to shrink.
  FuzzCase fc;
  std::uint64_t seed = 0;
  for (;; ++seed) {
    fc = generateCase(seed);
    if (totalRules(fc) >= 6 && fc.policies.size() >= 2) break;
  }
  const int targetId = fc.policies[0].rules().front().id;
  auto keepsTarget = [&](const FuzzCase& c) {
    return !c.policies.empty() &&
           c.policies[0].findRule(targetId) != nullptr;
  };
  ASSERT_TRUE(keepsTarget(fc));
  MinimizeStats stats;
  FuzzCase tiny = minimizeCase(fc, keepsTarget, &stats, 2000);
  EXPECT_TRUE(keepsTarget(tiny));
  EXPECT_EQ(totalRules(tiny), 1) << stats.toString();
  EXPECT_EQ(tiny.policies.size(), 1u);
  EXPECT_LE(tiny.graph->switchCount(), fc.graph->switchCount());
  EXPECT_NO_THROW(tiny.problem().validate());
}

TEST(FuzzMinimizer, DropUnusedSwitchesPreservesSemantics) {
  FuzzCase fc = generateCase(17);
  // Orphan a switch by removing one policy's routing (and the policy).
  if (fc.policies.size() >= 2) {
    fc.policies.pop_back();
    fc.routing.pop_back();
  }
  FuzzCase compact = dropUnusedSwitches(fc);
  EXPECT_NO_THROW(compact.problem().validate());
  EXPECT_LE(compact.graph->switchCount(), fc.graph->switchCount());
  EXPECT_EQ(compact.routing.size(), fc.routing.size());
  for (std::size_t i = 0; i < fc.routing.size(); ++i) {
    ASSERT_EQ(compact.routing[i].paths.size(), fc.routing[i].paths.size());
    for (std::size_t j = 0; j < fc.routing[i].paths.size(); ++j) {
      EXPECT_EQ(compact.routing[i].paths[j].switches.size(),
                fc.routing[i].paths[j].switches.size());
    }
  }
}

TEST(FuzzReproducer, HeaderRoundTrips) {
  FuzzCase fc = generateCase(23);
  ModeConfig mode;
  mode.merge = true;
  mode.basePolicies = 0;
  const std::string text =
      formatReproducer(fc, mode, 777, "determinism: jobs=1 vs jobs=2\nline2");
  Reproducer repro = parseReproducer(text);
  EXPECT_EQ(repro.seed, 777u);
  EXPECT_EQ(repro.mode.toString(), mode.toString());
  EXPECT_EQ(repro.note, "determinism: jobs=1 vs jobs=2\nline2");
  EXPECT_EQ(io::formatScenario(repro.fuzzCase.problem()),
            io::formatScenario(fc.problem()));
}

TEST(FuzzReproducer, PlainScenarioLoadsWithDefaults) {
  FuzzCase fc = generateCase(29);
  Reproducer repro = parseReproducer(io::formatScenario(fc.problem()));
  EXPECT_EQ(repro.seed, 0u);
  EXPECT_EQ(repro.mode.toString(), ModeConfig{}.toString());
  EXPECT_TRUE(repro.note.empty());
}

TEST(FuzzOracle, PlacementsEqualReportsFirstDifference) {
  FuzzCase fc = generateCase(2);
  const ModeConfig mode;
  OracleOptions opts = fastOracle();
  core::PlaceOutcome outcome =
      core::place(fc.problem(), [&] {
        core::PlaceOptions po;
        po.budget = solver::Budget::conflicts(opts.conflictBudget);
        return po;
      }());
  ASSERT_EQ(outcome.status, solver::OptStatus::kOptimal);
  std::string why;
  EXPECT_TRUE(placementsEqual(outcome.placement, outcome.placement, &why));
  core::PlaceOutcome corrupted = outcome;
  if (injectBug(corrupted, BugKind::kDropInstalledRule)) {
    EXPECT_FALSE(
        placementsEqual(outcome.placement, corrupted.placement, &why));
    EXPECT_FALSE(why.empty());
  }
  (void)mode;
}

}  // namespace
}  // namespace ruleplace::fuzz
