// Tests for the text formats (policies, scenarios) and reports.

#include <gtest/gtest.h>

#include <fstream>

#include "core/placer.h"
#include "core/verify.h"
#include "io/policy_text.h"
#include "io/report.h"
#include "io/scenario.h"
#include "match/tuple5.h"

namespace ruleplace::io {
namespace {

TEST(PolicyText, ParsesStructuredRules) {
  acl::Policy q = parsePolicy(
      "# a comment\n"
      "permit src 10.1.0.0/16 dst 11.0.0.0/8 tcp dport 443\n"
      "\n"
      "drop src 10.0.0.0/8\n");
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(q.rules()[0].action, acl::Action::kPermit);
  EXPECT_EQ(q.rules()[1].action, acl::Action::kDrop);
  // Overlap structure is what placement consumes: the permit shields.
  EXPECT_TRUE(q.rules()[0].matchField.overlaps(q.rules()[1].matchField));
}

TEST(PolicyText, ParsesRawRules) {
  acl::Policy q = parsePolicy("permit raw 10*1\ndrop raw ****\n");
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(q.rules()[0].matchField.toString(), "10*1");
}

TEST(PolicyText, RejectsMalformedInput) {
  EXPECT_THROW(parsePolicy("allow src 10.0.0.0/8\n"), ParseError);
  EXPECT_THROW(parsePolicy("drop src 10.0.0/8\n"), ParseError);
  EXPECT_THROW(parsePolicy("drop src 10.0.0.0/40\n"), ParseError);
  EXPECT_THROW(parsePolicy("drop sport 99999\n"), ParseError);
  EXPECT_THROW(parsePolicy("drop frobnicate 1\n"), ParseError);
  EXPECT_THROW(parsePolicy("permit raw 10x\n"), ParseError);
  try {
    parsePolicy("permit src 10.0.0.0/8\nbogus\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(PolicyText, RoundTripsThroughFormat) {
  const char* text =
      "permit src 10.1.0.0/16 dst 11.0.0.0/8 tcp dport 443\n"
      "drop src 10.0.0.0/8 udp\n"
      "permit src 0.0.0.0/0 dst 192.168.1.0/24 sport 1024\n";
  acl::Policy q = parsePolicy(text);
  std::string rendered = formatPolicy(q);
  acl::Policy q2 = parsePolicy(rendered);
  ASSERT_EQ(q.size(), q2.size());
  for (std::size_t i = 0; i < q.size(); ++i) {
    EXPECT_EQ(q.rules()[i].matchField, q2.rules()[i].matchField);
    EXPECT_EQ(q.rules()[i].action, q2.rules()[i].action);
  }
}

TEST(PolicyText, RawRulesRoundTrip) {
  acl::Policy q = parsePolicy("drop raw 10*1**10\npermit raw 0*******\n");
  acl::Policy q2 = parsePolicy(formatPolicy(q));
  ASSERT_EQ(q2.size(), 2u);
  EXPECT_EQ(q2.rules()[0].matchField.toString(), "10*1**10");
  EXPECT_EQ(q2.rules()[1].action, acl::Action::kPermit);
}

TEST(PolicyText, FormatMatchFallsBackToRaw) {
  // A cube that is not prefix-shaped in the src field renders as raw.
  match::Ternary odd(match::Tuple5Layout::kWidth);
  odd.setBit(match::Tuple5Layout::kSrcIpOffset + 3, 1);  // low bit only
  std::string s = formatMatch(odd);
  EXPECT_EQ(s.rfind("raw ", 0), 0u);
}

const char* kFig3Scenario = R"(
switch s1 capacity 0 role edge
switch s2 capacity 1
switch s3 capacity 2
switch s4 capacity 0
switch s5 capacity 2
link s1 s2
link s2 s3
link s2 s4
link s4 s5
port l1 switch s1
port l2 switch s3
port l3 switch s5
path l1 l2 via s1 s2 s3
path l1 l3 via s1 s2 s4 s5
policy l1
    permit src 10.1.0.0/16 dst 11.0.0.0/8
    drop   src 10.0.0.0/8  dst 11.0.0.0/8
end
)";

TEST(Scenario, ParsesAndSolvesFig3) {
  Scenario sc;
  parseScenario(kFig3Scenario, sc);
  EXPECT_EQ(sc.graph.switchCount(), 5);
  EXPECT_EQ(sc.graph.entryPortCount(), 3);
  ASSERT_EQ(sc.routing.size(), 1u);
  EXPECT_EQ(sc.routing[0].paths.size(), 2u);
  ASSERT_EQ(sc.policies.size(), 1u);
  EXPECT_EQ(sc.policies[0].size(), 2u);

  core::PlaceOutcome out = core::place(sc.problem());
  ASSERT_EQ(out.status, solver::OptStatus::kOptimal);
  EXPECT_EQ(out.objective, 4);  // drop + shield on both egress switches
  auto v = core::verifyPlacement(out.solvedProblem, out.placement);
  EXPECT_TRUE(v.ok) << v.summary();
}

TEST(Scenario, TrafficDescriptorsParse) {
  Scenario sc;
  parseScenario(
      "switch a capacity 5\nswitch b capacity 5\nlink a b\n"
      "port p1 switch a\nport p2 switch b\n"
      "path p1 p2 via a b traffic-dst 10.0.1.0/24\n"
      "policy p1\n  drop dst 10.0.1.0/24\nend\n",
      sc);
  ASSERT_TRUE(sc.routing[0].paths[0].traffic.has_value());
  EXPECT_TRUE(sc.routing[0].paths[0].traffic->overlaps(
      sc.policies[0].rules()[0].matchField));
}

TEST(Scenario, RejectsStructuralErrors) {
  Scenario s1;
  EXPECT_THROW(parseScenario("switch a capacity 5\nswitch a capacity 5\n", s1),
               ParseError);
  Scenario s2;
  EXPECT_THROW(parseScenario("link a b\n", s2), ParseError);
  Scenario s3;
  EXPECT_THROW(parseScenario("switch a capacity 5\nport p switch a\n"
                             "policy p\n  drop raw 1\n",
                             s3),
               ParseError);  // missing 'end'
  Scenario s4;
  EXPECT_THROW(
      parseScenario("switch a capacity 5\nport p switch a\n"
                    "policy p\n  drop raw 1\nend\n",
                    s4),
      ParseError);  // policy without a path
  Scenario s5;
  EXPECT_THROW(parseScenario("switch a capacity 5\nswitch b capacity 5\n"
                             "port p1 switch a\nport p2 switch b\n"
                             "path p1 p2 via a b\n"  // missing link
                             "policy p1\n  drop raw 1\nend\n",
                             s5),
               std::exception);
}

TEST(Scenario, RoundTripsThroughFormat) {
  Scenario sc;
  parseScenario(kFig3Scenario, sc);
  std::string rendered = formatScenario(sc.problem());
  Scenario sc2;
  parseScenario(rendered, sc2);
  EXPECT_EQ(sc2.graph.switchCount(), sc.graph.switchCount());
  EXPECT_EQ(sc2.graph.linkCount(), sc.graph.linkCount());
  EXPECT_EQ(sc2.routing[0].paths.size(), sc.routing[0].paths.size());
  EXPECT_TRUE(sc2.policies[0].semanticallyEquals(sc.policies[0]));
  // Both parse to problems with identical optimal objective.
  EXPECT_EQ(core::place(sc.problem()).objective,
            core::place(sc2.problem()).objective);
}

TEST(Scenario, LoadFromFile) {
  const char* path = "/tmp/rp_scenario_test.scenario";
  {
    std::ofstream out(path);
    out << kFig3Scenario;
  }
  Scenario sc;
  loadScenarioFile(path, sc);
  EXPECT_EQ(sc.graph.switchCount(), 5);
  Scenario missing;
  EXPECT_THROW(loadScenarioFile("/nonexistent/file.scenario", missing),
               std::runtime_error);
}

TEST(Report, AnalyzesSolvedOutcome) {
  Scenario sc;
  parseScenario(kFig3Scenario, sc);
  core::PlaceOutcome out = core::place(sc.problem());
  PlacementReport report = analyzePlacement(out);
  EXPECT_EQ(report.totalInstalled, 4);
  EXPECT_EQ(report.requiredRules, 2);
  EXPECT_DOUBLE_EQ(report.duplicationOverheadPct, 100.0);
  EXPECT_EQ(report.switchesUsed, 2);
  EXPECT_EQ(report.maxSwitchLoad, 2);
  EXPECT_EQ(report.replicateAllRules, 4);  // 2 rules x 2 paths
  EXPECT_NE(report.toString().find("duplication overhead : 100%"),
            std::string::npos);
  std::string util = utilizationTable(out.solvedProblem, out.placement);
  EXPECT_NE(util.find("2/2"), std::string::npos);
}

TEST(Report, EmptyForInfeasibleOutcome) {
  core::PlaceOutcome out;  // default: kUnknown, no solution
  PlacementReport report = analyzePlacement(out);
  EXPECT_EQ(report.totalInstalled, 0);
  EXPECT_EQ(report.switchesUsed, 0);
}

TEST(Report, CarriesComponentAggregates) {
  Scenario sc;
  parseScenario(kFig3Scenario, sc);
  core::PlaceOutcome out = core::place(sc.problem());
  PlacementReport report = analyzePlacement(out);
  EXPECT_EQ(report.components,
            static_cast<int>(out.componentStats.size()));
  EXPECT_GE(report.components, 1);
  EXPECT_EQ(report.threadsUsed, out.threadsUsed);
  EXPECT_EQ(report.solverPropagations, out.solverStats.propagations);
  EXPECT_GT(report.solveCpuSeconds, 0.0);
  EXPECT_NE(report.toString().find("components"), std::string::npos);
  EXPECT_NE(report.toString().find("solve wall / cpu"), std::string::npos);
}

TEST(Report, SolverAggregatesSurviveInfeasibleOutcome) {
  // Solve attribution must be filled even when there is no placement.
  core::PlaceOutcome out;
  out.threadsUsed = 3;
  core::ComponentSolveStats c;
  c.policyCount = 2;
  c.ruleCount = 9;
  c.status = solver::OptStatus::kInfeasible;
  c.encodeSeconds = 0.25;
  c.solveSeconds = 0.5;
  c.solverStats.conflicts = 17;
  out.componentStats = {c, c};
  out.solverStats.conflicts = 34;
  out.status = solver::OptStatus::kInfeasible;
  PlacementReport report = analyzePlacement(out);
  EXPECT_EQ(report.components, 2);
  EXPECT_EQ(report.threadsUsed, 3);
  EXPECT_EQ(report.solverConflicts, 34);
  EXPECT_DOUBLE_EQ(report.solveCpuSeconds, 1.5);
  EXPECT_EQ(report.totalInstalled, 0);  // still no placement numbers
}

TEST(Report, ComponentTableListsEveryComponent) {
  core::PlaceOutcome out;
  core::ComponentSolveStats a;
  a.policyCount = 1;
  a.ruleCount = 5;
  a.status = solver::OptStatus::kOptimal;
  a.objective = 7;
  core::ComponentSolveStats b;
  b.policyCount = 3;
  b.ruleCount = 21;
  b.status = solver::OptStatus::kInfeasible;
  out.componentStats = {a, b};
  std::string table = componentTable(out);
  EXPECT_NE(table.find("policies"), std::string::npos);
  EXPECT_NE(table.find("optimal"), std::string::npos);
  EXPECT_NE(table.find("infeasible"), std::string::npos);
  EXPECT_NE(table.find("21"), std::string::npos);
}

TEST(Report, FormatPlacementRendersStructuredMatches) {
  Scenario sc;
  parseScenario(kFig3Scenario, sc);
  core::PlaceOutcome out = core::place(sc.problem());
  std::string tables = formatPlacement(out.solvedProblem, out.placement);
  EXPECT_NE(tables.find("drop src 10.0.0.0/8 dst 11.0.0.0/8"),
            std::string::npos);
  EXPECT_NE(tables.find("permit src 10.1.0.0/16"), std::string::npos);
}

}  // namespace
}  // namespace ruleplace::io
