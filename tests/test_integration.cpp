// End-to-end integration and property tests: generated Fat-Tree instances
// solved through the full pipeline, with the semantic verifier as oracle.

#include <gtest/gtest.h>

#include "core/greedy.h"
#include "core/incremental.h"
#include "core/instance.h"
#include "core/placer.h"
#include "core/verify.h"

namespace ruleplace::core {
namespace {

InstanceConfig smallConfig(std::uint64_t seed) {
  InstanceConfig cfg;
  cfg.fatTreeK = 4;
  cfg.capacity = 40;
  cfg.ingressCount = 4;
  cfg.totalPaths = 12;
  cfg.rulesPerPolicy = 10;
  cfg.seed = seed;
  return cfg;
}

class EndToEnd : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EndToEnd, OptimalPlacementIsSemanticallyExact) {
  Instance inst(smallConfig(GetParam()));
  PlaceOutcome out = place(inst.problem());
  ASSERT_EQ(out.status, solver::OptStatus::kOptimal);
  auto v = verifyPlacement(out.solvedProblem, out.placement);
  EXPECT_TRUE(v.ok) << v.summary();
  EXPECT_EQ(out.objective, out.placement.totalInstalledRules());
}

TEST_P(EndToEnd, IlpNeverWorseThanGreedy) {
  Instance inst(smallConfig(GetParam() + 100));
  GreedyOutcome greedy = greedyPlace(inst.problem());
  PlaceOutcome ilp = place(inst.problem());
  ASSERT_EQ(ilp.status, solver::OptStatus::kOptimal);
  if (greedy.feasible) {
    EXPECT_LE(ilp.objective, greedy.totalRules);
  }
  // Both massively undercut naive p x r replication.
  EXPECT_LE(ilp.objective, replicateAllCount(inst.problem()));
}

TEST_P(EndToEnd, SatisfiabilityModeAgreesOnFeasibility) {
  InstanceConfig cfg = smallConfig(GetParam() + 200);
  cfg.capacity = 12;  // tighter: some instances infeasible
  Instance inst(cfg);
  // Near the feasibility boundary, proving optimality can require counting
  // arguments that grind; a budget yields kFeasible, which still settles
  // the feasibility question.
  PlaceOptions optOpts;
  optOpts.budget = solver::Budget::seconds(30);
  PlaceOutcome opt = place(inst.problem(), optOpts);
  PlaceOptions satOpts;
  satOpts.satisfiabilityOnly = true;
  satOpts.budget = solver::Budget::seconds(30);
  PlaceOutcome sat = place(inst.problem(), satOpts);
  if (opt.status == solver::OptStatus::kUnknown ||
      sat.status == solver::OptStatus::kUnknown) {
    GTEST_SKIP() << "budget exhausted before a feasibility verdict";
  }
  EXPECT_EQ(opt.hasSolution(), sat.hasSolution());
  if (sat.hasSolution()) {
    auto v = verifyPlacement(sat.solvedProblem, sat.placement);
    EXPECT_TRUE(v.ok) << v.summary();
    EXPECT_LE(opt.objective, sat.placement.totalInstalledRules());
  }
}

TEST_P(EndToEnd, MergingNeverIncreasesInstalledRules) {
  InstanceConfig cfg = smallConfig(GetParam() + 300);
  cfg.mergeableRules = 4;
  Instance inst(cfg);
  PlaceOutcome plain = place(inst.problem());
  PlaceOptions mergeOpts;
  mergeOpts.encoder.enableMerging = true;
  // Optimality proofs on merged models can require counting arguments the
  // clause learner is bad at; a budget keeps the test fast and the
  // assertions below only need a good incumbent.
  mergeOpts.budget = solver::Budget::seconds(10);
  PlaceOutcome merged = place(inst.problem(), mergeOpts);
  ASSERT_TRUE(plain.hasSolution());
  ASSERT_TRUE(merged.hasSolution());
  EXPECT_LE(merged.objective, plain.objective);
  EXPECT_EQ(merged.objective, merged.placement.totalInstalledRules());
  auto v = verifyPlacement(merged.solvedProblem, merged.placement);
  EXPECT_TRUE(v.ok) << v.summary();
}

TEST_P(EndToEnd, PathSlicingPreservesSlicedSemantics) {
  InstanceConfig cfg = smallConfig(GetParam() + 400);
  cfg.slicedTraffic = true;
  Instance inst(cfg);
  PlaceOptions opts;
  opts.encoder.enablePathSlicing = true;
  PlaceOutcome out = place(inst.problem(), opts);
  ASSERT_TRUE(out.hasSolution());
  auto v = verifyPlacement(out.solvedProblem, out.placement, true);
  EXPECT_TRUE(v.ok) << v.summary();

  // Slicing can only shrink the model and the optimum.
  PlaceOutcome full = place(inst.problem());
  ASSERT_TRUE(full.hasSolution());
  EXPECT_LE(out.modelVars, full.modelVars);
  EXPECT_LE(out.objective, full.objective);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEnd, ::testing::Range<std::uint64_t>(1, 9));

TEST(EndToEnd, OverConstrainedInstanceIsInfeasible) {
  InstanceConfig cfg = smallConfig(7);
  cfg.capacity = 1;
  Instance inst(cfg);
  PlaceOutcome out = place(inst.problem());
  EXPECT_EQ(out.status, solver::OptStatus::kInfeasible);
}

TEST(EndToEnd, BudgetedSolveReturnsIncumbentOrUnknown) {
  InstanceConfig cfg = smallConfig(8);
  cfg.rulesPerPolicy = 20;
  Instance inst(cfg);
  PlaceOptions opts;
  opts.budget = solver::Budget::seconds(0.001);
  PlaceOutcome out = place(inst.problem(), opts);
  EXPECT_TRUE(out.status == solver::OptStatus::kFeasible ||
              out.status == solver::OptStatus::kUnknown ||
              out.status == solver::OptStatus::kOptimal);
  if (out.hasSolution()) {
    auto v = verifyPlacement(out.solvedProblem, out.placement);
    EXPECT_TRUE(v.ok) << v.summary();
  }
}

// ---- incremental deployment (§IV-E) ----------------------------------------

class IncrementalTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalTest, InstallNewPolicyOnSpareCapacity) {
  InstanceConfig cfg = smallConfig(GetParam() + 500);
  cfg.capacity = 60;
  Instance inst(cfg);
  PlaceOutcome base = place(inst.problem());
  ASSERT_TRUE(base.hasSolution());

  // New tenant: a fresh policy with one path, placed incrementally.
  util::Rng rng(GetParam() + 1);
  classbench::GeneratorConfig gen;
  gen.rulesPerPolicy = 8;
  classbench::PolicyGenerator pg(gen, rng.next());
  topo::ShortestPathRouter router(inst.graph());
  topo::PortId in = 1;
  topo::Path path = router.route(in, inst.graph().entryPortCount() - 1, rng);
  std::vector<topo::IngressPaths> newRouting{{in, {path}}};
  std::vector<acl::Policy> newPolicies{pg.generate()};

  PlaceOptions fast;
  fast.satisfiabilityOnly = true;
  PlaceOutcome inc = installPolicies(base.solvedProblem, base.placement,
                                     newRouting, newPolicies, fast);
  ASSERT_TRUE(inc.hasSolution());
  auto v = verifyPlacement(inc.solvedProblem, inc.placement);
  EXPECT_TRUE(v.ok) << v.summary();
  // Base entries are untouched: capacities still respected jointly.
  EXPECT_GE(inc.placement.totalInstalledRules(),
            base.placement.totalInstalledRules());
}

TEST_P(IncrementalTest, RerouteKeepsOtherPoliciesIntact) {
  InstanceConfig cfg = smallConfig(GetParam() + 600);
  cfg.capacity = 60;
  Instance inst(cfg);
  PlaceOutcome base = place(inst.problem());
  ASSERT_TRUE(base.hasSolution());

  // Move policy 0 to a different set of paths.
  util::Rng rng(GetParam() + 2);
  topo::ShortestPathRouter router(inst.graph());
  topo::PortId in = inst.routing()[0].ingress;
  std::vector<topo::IngressPaths> newRouting{
      {in,
       {router.route(in, 2, rng), router.route(in, 3, rng),
        router.route(in, inst.graph().entryPortCount() - 2, rng)}}};

  PlaceOptions fast;
  fast.satisfiabilityOnly = true;
  PlaceOutcome inc = reroutePolicies(base.solvedProblem, base.placement, {0},
                                     newRouting, fast);
  ASSERT_TRUE(inc.hasSolution());
  auto v = verifyPlacement(inc.solvedProblem, inc.placement);
  EXPECT_TRUE(v.ok) << v.summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalTest,
                         ::testing::Range<std::uint64_t>(1, 6));

TEST(Incremental, SpareCapacitiesAccounting) {
  InstanceConfig cfg = smallConfig(9);
  Instance inst(cfg);
  PlaceOutcome base = place(inst.problem());
  ASSERT_TRUE(base.hasSolution());
  auto spare = spareCapacities(base.solvedProblem, base.placement);
  for (int sw = 0; sw < inst.graph().switchCount(); ++sw) {
    EXPECT_EQ(spare[static_cast<std::size_t>(sw)],
              cfg.capacity - base.placement.usedCapacity(sw));
    EXPECT_GE(spare[static_cast<std::size_t>(sw)], 0);
  }
}

TEST(Incremental, InstallFailsWhenNoSpareCapacity) {
  InstanceConfig cfg = smallConfig(10);
  cfg.capacity = 14;  // just enough for the base load
  Instance inst(cfg);
  PlaceOutcome base = place(inst.problem());
  if (!base.hasSolution()) GTEST_SKIP() << "base already infeasible";

  // A new policy too large for whatever is left on its single path.
  util::Rng rng(4);
  classbench::GeneratorConfig gen;
  gen.rulesPerPolicy = 200;
  classbench::PolicyGenerator pg(gen, 5);
  topo::ShortestPathRouter router(inst.graph());
  topo::Path path = router.route(0, inst.graph().entryPortCount() - 1, rng);
  PlaceOptions fast;
  fast.satisfiabilityOnly = true;
  PlaceOutcome inc =
      installPolicies(base.solvedProblem, base.placement, {{0, {path}}},
                      {pg.generate()}, fast);
  EXPECT_FALSE(inc.hasSolution());
}

}  // namespace
}  // namespace ruleplace::core
