// Differential testing of the entire placement pipeline.
//
// For tiny random instances we enumerate EVERY subset of (rule, switch)
// placements, check feasibility directly from the problem definition
// (§III/§IV-A: per-path coverage of each DROP, shield co-location,
// capacities), and take the true minimum.  The encoder+solver+extraction
// stack must reproduce exactly that optimum — and its extracted placement
// must pass the independent semantic verifier.

#include <gtest/gtest.h>

#include "core/placer.h"
#include "core/verify.h"
#include "depgraph/depgraph.h"
#include "util/rng.h"

namespace ruleplace::core {
namespace {

using acl::Action;
using acl::Policy;
using match::Ternary;

constexpr int kWidth = 5;

Ternary randomCube(util::Rng& rng) {
  Ternary t(kWidth);
  for (int i = 0; i < kWidth; ++i) {
    std::uint64_t r = rng.below(4);
    t.setBit(i, r >= 2 ? -1 : static_cast<int>(r));  // 50% wildcard
  }
  return t;
}

struct TinyInstance {
  topo::Graph graph;
  PlacementProblem problem;

  TinyInstance(std::uint64_t seed) {
    util::Rng rng(seed);
    // Diamond: s0 - {s1, s2} - s3, ingress at s0, two egresses.
    topo::SwitchId s0 = graph.addSwitch(0);
    topo::SwitchId s1 = graph.addSwitch(0);
    topo::SwitchId s2 = graph.addSwitch(0);
    topo::SwitchId s3 = graph.addSwitch(0);
    graph.addLink(s0, s1);
    graph.addLink(s0, s2);
    graph.addLink(s1, s3);
    graph.addLink(s2, s3);
    topo::PortId in = graph.addEntryPort(s0);
    topo::PortId outA = graph.addEntryPort(s1);
    topo::PortId outB = graph.addEntryPort(s3);
    for (int sw = 0; sw < 4; ++sw) {
      graph.sw(sw).capacity = static_cast<int>(rng.range(1, 3));
    }
    Policy q;
    int nRules = static_cast<int>(rng.range(2, 4));
    bool haveDrop = false;
    for (int r = 0; r < nRules; ++r) {
      bool drop = rng.chance(0.5) || (r == nRules - 1 && !haveDrop);
      haveDrop |= drop;
      q.addRule(randomCube(rng), drop ? Action::kDrop : Action::kPermit);
    }
    problem.graph = &graph;
    problem.routing = {{in,
                        {{in, outA, {s0, s1}, std::nullopt},
                         {in, outB, {s0, s2, s3}, std::nullopt}}}};
    problem.policies = {std::move(q)};
  }
};

// Ground-truth optimum by exhaustive enumeration.
// Returns -1 when no feasible placement exists.
int enumerateOptimum(const PlacementProblem& problem) {
  const Policy& q = problem.policies[0];
  depgraph::DependencyGraph dg(q);
  const auto& paths = problem.routing[0].paths;
  const int nSwitches = problem.graph->switchCount();
  const int nRules = static_cast<int>(q.size());
  const int cells = nRules * nSwitches;
  EXPECT_LE(cells, 16);

  int best = -1;
  for (std::uint32_t bits = 0; bits < (1u << cells); ++bits) {
    auto placed = [&](int ruleIdx, int sw) {
      return (bits >> (ruleIdx * nSwitches + sw)) & 1u;
    };
    // Capacity.
    bool ok = true;
    for (int sw = 0; sw < nSwitches && ok; ++sw) {
      int load = 0;
      for (int r = 0; r < nRules; ++r) load += placed(r, sw) ? 1 : 0;
      ok = load <= problem.graph->sw(sw).capacity;
    }
    // Path coverage for each drop + shield co-location.
    const auto& rules = q.rules();
    for (int r = 0; r < nRules && ok; ++r) {
      if (rules[static_cast<std::size_t>(r)].action != Action::kDrop) {
        continue;
      }
      for (const auto& path : paths) {
        bool covered = false;
        for (topo::SwitchId sw : path.switches) {
          if (placed(r, sw)) covered = true;
        }
        if (!covered) {
          ok = false;
          break;
        }
      }
      for (int sw = 0; sw < nSwitches && ok; ++sw) {
        if (!placed(r, sw)) continue;
        for (int shieldId :
             dg.shieldsOf(rules[static_cast<std::size_t>(r)].id)) {
          // Map rule id -> index (ids are insertion-ordered, match index
          // after sorting by priority descending == addRule order here).
          int shieldIdx = -1;
          for (int x = 0; x < nRules; ++x) {
            if (rules[static_cast<std::size_t>(x)].id == shieldId) {
              shieldIdx = x;
            }
          }
          if (!placed(shieldIdx, sw)) {
            ok = false;
            break;
          }
        }
      }
    }
    if (!ok) continue;
    int count = 0;
    for (int c = 0; c < cells; ++c) count += (bits >> c) & 1u;
    if (best < 0 || count < best) best = count;
  }
  return best;
}

class DifferentialPlacement : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(DifferentialPlacement, IlpMatchesExhaustiveOptimum) {
  for (int round = 0; round < 6; ++round) {
    TinyInstance inst(GetParam() * 1000 + static_cast<std::uint64_t>(round));
    int truth = enumerateOptimum(inst.problem);
    PlaceOutcome out = place(inst.problem);
    if (truth < 0) {
      EXPECT_EQ(out.status, solver::OptStatus::kInfeasible)
          << "seed " << GetParam() << " round " << round;
      continue;
    }
    ASSERT_EQ(out.status, solver::OptStatus::kOptimal)
        << "seed " << GetParam() << " round " << round;
    // Note: the enumeration counts *all* placements including gratuitous
    // permits; the ILP never places more than needed, so equality on the
    // minimum is the correct check.
    EXPECT_EQ(out.objective, truth)
        << "seed " << GetParam() << " round " << round;
    auto v = verifyPlacement(out.solvedProblem, out.placement);
    EXPECT_TRUE(v.ok) << v.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialPlacement,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace ruleplace::core
