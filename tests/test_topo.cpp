// Tests for the topology/routing substrate: graph invariants, Fat-Tree
// structure, shortest-path routing, path bookkeeping.

#include <gtest/gtest.h>

#include <set>

#include "topo/fattree.h"
#include "topo/graph.h"
#include "topo/routing.h"
#include "util/rng.h"

namespace ruleplace::topo {
namespace {

TEST(Graph, AddAndQuery) {
  Graph g;
  SwitchId a = g.addSwitch(100);
  SwitchId b = g.addSwitch(200, SwitchRole::kEdge, "myedge");
  g.addLink(a, b);
  EXPECT_EQ(g.switchCount(), 2);
  EXPECT_EQ(g.linkCount(), 1);
  EXPECT_TRUE(g.hasLink(a, b));
  EXPECT_TRUE(g.hasLink(b, a));
  EXPECT_EQ(g.sw(b).name, "myedge");
  EXPECT_EQ(g.sw(a).capacity, 100);
  PortId p = g.addEntryPort(a);
  EXPECT_EQ(g.entryPort(p).attachedSwitch, a);
}

TEST(Graph, RejectsBadLinks) {
  Graph g;
  SwitchId a = g.addSwitch(10);
  SwitchId b = g.addSwitch(10);
  EXPECT_THROW(g.addLink(a, a), std::invalid_argument);
  EXPECT_THROW(g.addLink(a, 99), std::out_of_range);
  g.addLink(a, b);
  EXPECT_THROW(g.addLink(b, a), std::invalid_argument);  // duplicate
  EXPECT_THROW(g.addSwitch(-1), std::invalid_argument);
  EXPECT_THROW(g.addEntryPort(42), std::out_of_range);
}

TEST(Graph, UniformCapacity) {
  Graph g;
  g.addSwitch(1);
  g.addSwitch(2);
  g.setUniformCapacity(77);
  EXPECT_EQ(g.sw(0).capacity, 77);
  EXPECT_EQ(g.sw(1).capacity, 77);
}

class FatTreeStructure : public ::testing::TestWithParam<int> {};

TEST_P(FatTreeStructure, CountsMatchAlFares) {
  const int k = GetParam();
  Graph g;
  FatTreeInfo info = buildFatTree(g, k, 100);
  // 5k^2/4 switches, k^3/4 host ports (paper §V / [26]).
  EXPECT_EQ(g.switchCount(), 5 * k * k / 4);
  EXPECT_EQ(info.edgeCount, k * k / 2);
  EXPECT_EQ(info.aggCount, k * k / 2);
  EXPECT_EQ(info.coreCount, k * k / 4);
  EXPECT_EQ(g.entryPortCount(), k * k * k / 4);
  // Link count: k pods * (k/2)^2 intra-pod + (k/2)^2 cores * k uplinks.
  EXPECT_EQ(g.linkCount(), k * k * k / 4 + k * k * k / 4);
}

TEST_P(FatTreeStructure, EveryHostPairIsConnected) {
  const int k = GetParam();
  Graph g;
  buildFatTree(g, k, 100);
  ShortestPathRouter router(g);
  util::Rng rng(7);
  // Same-pod and cross-pod routes both exist and have the expected length.
  if (k >= 4) {  // k=2 has a single host per edge switch
    Path same = router.route(0, 1, rng);  // hosts on the same edge switch
    EXPECT_EQ(same.hops(), 1);
  }
  Path cross = router.route(0, g.entryPortCount() - 1, rng);
  EXPECT_EQ(cross.hops(), 5);  // edge-agg-core-agg-edge
}

INSTANTIATE_TEST_SUITE_P(Arities, FatTreeStructure, ::testing::Values(2, 4, 8));

TEST(FatTree, RejectsOddK) {
  Graph g;
  EXPECT_THROW(buildFatTree(g, 3, 10), std::invalid_argument);
  EXPECT_THROW(buildFatTree(g, 0, 10), std::invalid_argument);
}

TEST(OtherTopologies, LinearAndLeafSpine) {
  Graph line;
  buildLinear(line, 4, 10);
  EXPECT_EQ(line.switchCount(), 4);
  EXPECT_EQ(line.linkCount(), 3);
  EXPECT_EQ(line.entryPortCount(), 2);

  Graph ls;
  buildLeafSpine(ls, 3, 2, 4, 10);
  EXPECT_EQ(ls.switchCount(), 5);
  EXPECT_EQ(ls.linkCount(), 6);
  EXPECT_EQ(ls.entryPortCount(), 12);
  ShortestPathRouter router(ls);
  util::Rng rng(1);
  Path p = router.route(0, 11, rng);  // leaf0 host -> leaf2 host
  EXPECT_EQ(p.hops(), 3);             // leaf-spine-leaf
}

TEST(Routing, PathStartsAndEndsAtAttachedSwitches) {
  Graph g;
  buildFatTree(g, 4, 100);
  ShortestPathRouter router(g);
  util::Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    PortId in = static_cast<PortId>(rng.below(g.entryPortCount()));
    PortId out = static_cast<PortId>(rng.below(g.entryPortCount()));
    Path p = router.route(in, out, rng);
    EXPECT_EQ(p.switches.front(), g.entryPort(in).attachedSwitch);
    EXPECT_EQ(p.switches.back(), g.entryPort(out).attachedSwitch);
    for (std::size_t i = 0; i + 1 < p.switches.size(); ++i) {
      EXPECT_TRUE(g.hasLink(p.switches[i], p.switches[i + 1]));
    }
  }
}

TEST(Routing, TieBreakingDiversifiesPaths) {
  Graph g;
  buildFatTree(g, 4, 100);
  ShortestPathRouter router(g);
  util::Rng rng(5);
  PortId in = 0;
  PortId out = static_cast<PortId>(g.entryPortCount() - 1);
  std::set<std::vector<SwitchId>> distinct;
  for (int i = 0; i < 64; ++i) {
    distinct.insert(router.route(in, out, rng).switches);
  }
  // A k=4 fat-tree has 4 equal-cost cross-pod paths.
  EXPECT_GT(distinct.size(), 1u);
  EXPECT_LE(distinct.size(), 4u);
}

TEST(Routing, LocAndReachability) {
  Graph g;
  buildLinear(g, 3, 10);
  ShortestPathRouter router(g);
  util::Rng rng(1);
  IngressPaths ip{0, {router.route(0, 1, rng)}};
  const Path& p = ip.paths[0];
  EXPECT_EQ(p.locOf(p.switches[0]), 0);
  EXPECT_EQ(p.locOf(p.switches[2]), 2);
  EXPECT_EQ(p.locOf(99), -1);
  auto reach = ip.reachableSwitches();
  EXPECT_EQ(reach.size(), 3u);
  EXPECT_EQ(ip.minLoc(p.switches[1]), 1);
}

TEST(Routing, GeneratePathsSpreadsOverIngresses) {
  Graph g;
  buildFatTree(g, 4, 100);
  util::Rng rng(9);
  std::vector<PortId> ingresses{0, 5, 10};
  auto routing = generatePaths(g, ingresses, 30, rng);
  ASSERT_EQ(routing.size(), 3u);
  for (const auto& ip : routing) {
    EXPECT_EQ(ip.paths.size(), 10u);
    for (const auto& p : ip.paths) {
      EXPECT_EQ(p.ingress, ip.ingress);
      EXPECT_NE(p.egress, ip.ingress);
    }
  }
}

TEST(Routing, DstPrefixTrafficIsDisjointAcrossEgresses) {
  Graph g;
  buildFatTree(g, 4, 100);
  util::Rng rng(11);
  auto routing = generatePaths(g, {0}, 8, rng);
  assignDstPrefixTraffic(routing, 0x0a000000u, 24);
  for (const auto& p : routing[0].paths) {
    ASSERT_TRUE(p.traffic.has_value());
    for (const auto& q : routing[0].paths) {
      if (p.egress == q.egress) {
        EXPECT_TRUE(p.traffic->overlaps(*q.traffic));
      } else {
        EXPECT_FALSE(p.traffic->overlaps(*q.traffic));
      }
    }
  }
}

TEST(Routing, DisconnectedThrows) {
  Graph g;
  SwitchId a = g.addSwitch(10);
  SwitchId b = g.addSwitch(10);
  PortId pa = g.addEntryPort(a);
  PortId pb = g.addEntryPort(b);
  ShortestPathRouter router(g);
  util::Rng rng(1);
  EXPECT_THROW(router.route(pa, pb, rng), std::runtime_error);
}

}  // namespace
}  // namespace ruleplace::topo
