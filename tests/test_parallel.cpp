// Parallel placement engine tests: the work-stealing pool itself, the
// coupling-component decomposition, and the headline guarantee — thread
// count only changes scheduling, never results.  Every scenario is solved
// at threads=1 and threads in {2,4,8} and the outcomes must be
// bit-identical (status, objective, rendered placement, per-component
// stats).  Budgeted scenarios use conflict budgets: wall-clock budgets
// cannot give reproducible verdicts on loaded machines.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/placer.h"
#include "core/verify.h"
#include "util/thread_pool.h"

namespace ruleplace::core {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPool, ExecutesEverySubmittedTask) {
  util::ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ReusableAcrossWaitRounds) {
  util::ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.submit(
          [&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait();
    EXPECT_EQ(counter.load(), (round + 1) * 20);
  }
}

TEST(ThreadPool, SingleThreadStillDrainsQueue) {
  util::ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, TasksMaySubmitChildTasks) {
  util::ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit([&pool, &counter] {
      counter.fetch_add(1, std::memory_order_relaxed);
      // Child is queued before the parent finishes, so pending never
      // transiently hits zero and wait() sees both generations.
      pool.submit(
          [&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, ClampsNonPositiveThreadCount) {
  util::ThreadPool pool(0);
  EXPECT_EQ(pool.threadCount(), 1);
  util::ThreadPool pool2(-3);
  EXPECT_EQ(pool2.threadCount(), 1);
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(util::ThreadPool::hardwareThreads(), 1);
}

// ---------------------------------------------------------------------------
// couplingComponents

InstanceConfig baseConfig(std::uint64_t seed) {
  InstanceConfig cfg;
  cfg.fatTreeK = 4;
  cfg.capacity = 100;
  cfg.ingressCount = 6;
  cfg.totalPaths = 18;
  cfg.rulesPerPolicy = 8;
  cfg.seed = seed;
  return cfg;
}

void expectPartition(const std::vector<std::vector<int>>& comps, int n) {
  std::set<int> seen;
  int smallestOfPrev = -1;
  for (const auto& c : comps) {
    ASSERT_FALSE(c.empty());
    EXPECT_TRUE(std::is_sorted(c.begin(), c.end()));
    // Ordered by smallest member.
    EXPECT_GT(c.front(), smallestOfPrev);
    smallestOfPrev = c.front();
    for (int p : c) {
      EXPECT_TRUE(seen.insert(p).second) << "policy " << p << " duplicated";
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), n);
  if (n > 0) {
    EXPECT_EQ(*seen.begin(), 0);
    EXPECT_EQ(*seen.rbegin(), n - 1);
  }
}

TEST(CouplingComponents, RoomyCapacityDecouplesEveryPolicy) {
  InstanceConfig cfg = baseConfig(11);
  cfg.capacity = 10000;  // no switch can ever bind Eq. 3
  Instance inst(cfg);
  PlacementProblem p = inst.problem();
  EncoderOptions opts;  // merging off
  auto comps = couplingComponents(p, opts);
  expectPartition(comps, p.policyCount());
  EXPECT_EQ(comps.size(), static_cast<std::size_t>(p.policyCount()));
}

TEST(CouplingComponents, TightCapacityCouplesThroughSharedSwitches) {
  InstanceConfig cfg = baseConfig(11);
  cfg.capacity = 1;
  cfg.totalPaths = 24;
  Instance inst(cfg);
  PlacementProblem p = inst.problem();
  EncoderOptions opts;
  auto comps = couplingComponents(p, opts);
  expectPartition(comps, p.policyCount());
  // Fat-tree paths share aggregation/core switches, so at capacity 1 at
  // least two policies must land in one component.
  EXPECT_LT(comps.size(), static_cast<std::size_t>(p.policyCount()));
}

TEST(CouplingComponents, SharedMergeableRulesCoupleWhenMergingIsOn) {
  InstanceConfig cfg = baseConfig(7);
  cfg.capacity = 10000;
  cfg.mergeableRules = 3;  // identical blacklist appended to every policy
  Instance inst(cfg);
  PlacementProblem p = inst.problem();
  EncoderOptions off;
  auto decoupled = couplingComponents(p, off);
  EXPECT_EQ(decoupled.size(), static_cast<std::size_t>(p.policyCount()));
  EncoderOptions on;
  on.enableMerging = true;
  auto coupled = couplingComponents(p, on);
  expectPartition(coupled, p.policyCount());
  // The shared blacklist forms merge groups spanning all policies.
  EXPECT_EQ(coupled.size(), 1u);
}

// ---------------------------------------------------------------------------
// Thread-count invariance (the headline determinism guarantee)

struct Scenario {
  std::string name;
  InstanceConfig cfg;
  PlaceOptions opts;
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    {
      Scenario s;
      s.name = "roomy-" + std::to_string(seed);
      s.cfg = baseConfig(seed);
      out.push_back(std::move(s));
    }
    {
      Scenario s;
      s.name = "tight-" + std::to_string(seed);
      s.cfg = baseConfig(seed);
      s.cfg.capacity = 14;
      out.push_back(std::move(s));
    }
    {
      Scenario s;
      s.name = "merge-" + std::to_string(seed);
      s.cfg = baseConfig(seed);
      s.cfg.ingressCount = 4;
      s.cfg.totalPaths = 8;
      s.cfg.rulesPerPolicy = 6;
      s.cfg.capacity = 40;
      s.cfg.mergeableRules = 2;
      s.opts.encoder.enableMerging = true;
      // Optimality proofs on merged models can grind (see
      // test_integration); a *conflict* budget keeps the scenario fast
      // while staying deterministic, unlike a wall-clock budget.
      s.opts.budget = solver::Budget::conflicts(2000);
      out.push_back(std::move(s));
    }
  }
  {
    Scenario s;
    s.name = "slice";
    s.cfg = baseConfig(5);
    s.cfg.slicedTraffic = true;
    s.opts.encoder.enablePathSlicing = true;
    out.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "sat-only";
    s.cfg = baseConfig(6);
    s.cfg.capacity = 40;
    s.opts.satisfiabilityOnly = true;
    out.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "infeasible";
    s.cfg = baseConfig(4);
    s.cfg.capacity = 1;
    out.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "conflict-budget";
    s.cfg = baseConfig(8);
    s.cfg.capacity = 14;
    s.cfg.rulesPerPolicy = 12;
    s.opts.budget = solver::Budget::conflicts(40);
    out.push_back(std::move(s));
  }
  return out;
}

void expectIdentical(const Scenario& s, const PlaceOutcome& ref,
                     const PlaceOutcome& got, int threads) {
  SCOPED_TRACE(s.name + " @ threads=" + std::to_string(threads));
  EXPECT_EQ(got.status, ref.status);
  ASSERT_EQ(got.componentStats.size(), ref.componentStats.size());
  for (std::size_t c = 0; c < ref.componentStats.size(); ++c) {
    SCOPED_TRACE("component " + std::to_string(c));
    EXPECT_EQ(got.componentStats[c].status, ref.componentStats[c].status);
    EXPECT_EQ(got.componentStats[c].policyCount,
              ref.componentStats[c].policyCount);
    EXPECT_EQ(got.componentStats[c].ruleCount, ref.componentStats[c].ruleCount);
    EXPECT_EQ(got.componentStats[c].solverStats.conflicts,
              ref.componentStats[c].solverStats.conflicts);
    EXPECT_EQ(got.componentStats[c].solverStats.decisions,
              ref.componentStats[c].solverStats.decisions);
  }
  EXPECT_EQ(got.solverStats.conflicts, ref.solverStats.conflicts);
  EXPECT_EQ(got.modelVars, ref.modelVars);
  EXPECT_EQ(got.modelConstraints, ref.modelConstraints);
  ASSERT_EQ(got.hasSolution(), ref.hasSolution());
  if (ref.hasSolution()) {
    EXPECT_EQ(got.objective, ref.objective);
    EXPECT_EQ(got.placement.toString(got.solvedProblem),
              ref.placement.toString(ref.solvedProblem));
  }
}

TEST(ParallelPlacement, ThreadCountNeverChangesTheResult) {
  for (const Scenario& s : scenarios()) {
    SCOPED_TRACE(s.name);
    Instance inst(s.cfg);
    PlaceOptions seq = s.opts;
    seq.threads = 1;
    PlaceOutcome ref = place(inst.problem(), seq);
    EXPECT_FALSE(ref.componentStats.empty());
    EXPECT_EQ(ref.threadsUsed, 1);
    if (ref.hasSolution()) {
      auto v = verifyPlacement(ref.solvedProblem, ref.placement,
                               s.opts.encoder.enablePathSlicing);
      EXPECT_TRUE(v.ok) << v.summary();
    }
    for (int threads : {2, 4, 8}) {
      PlaceOptions par = s.opts;
      par.threads = threads;
      PlaceOutcome got = place(inst.problem(), par);
      EXPECT_LE(got.threadsUsed, threads);
      expectIdentical(s, ref, got, threads);
    }
  }
}

TEST(ParallelPlacement, DefaultThreadsMatchesExplicitOne) {
  Scenario s;
  s.cfg = baseConfig(9);
  Instance inst(s.cfg);
  PlaceOptions seq;
  seq.threads = 1;
  PlaceOutcome ref = place(inst.problem(), seq);
  PlaceOptions def;  // threads = 0 -> hardware concurrency
  PlaceOutcome got = place(inst.problem(), def);
  expectIdentical(s, ref, got, 0);
}

TEST(ParallelPlacement, ComponentStatsCoverTheWholeInstance) {
  InstanceConfig cfg = baseConfig(10);
  cfg.capacity = 10000;  // fully decoupled: one component per policy
  Instance inst(cfg);
  PlaceOptions opts;
  opts.threads = 4;
  PlaceOutcome out = place(inst.problem(), opts);
  ASSERT_TRUE(out.hasSolution());
  ASSERT_EQ(out.componentStats.size(),
            static_cast<std::size_t>(cfg.ingressCount));
  int policies = 0;
  std::int64_t objective = 0;
  for (const auto& c : out.componentStats) {
    EXPECT_EQ(c.status, out.status);
    policies += c.policyCount;
    objective += c.objective;
  }
  EXPECT_EQ(policies, cfg.ingressCount);
  EXPECT_EQ(objective, out.objective);
}

}  // namespace
}  // namespace ruleplace::core
