// Streaming parallel encoder equivalence suite (docs/performance.md,
// "Encode stage").
//
// The encoder's determinism contract: the emitted Model is *bit-identical*
// — same variables in the same order with the same (lazily materialized)
// names, same constraint CSR rows, same objective and lower bound — for
// every EncoderOptions::threads value, because the two-pass scheme gives
// each policy a private buffer with local variable numbering and splices
// the buffers in policy order.  This suite checks that contract directly
// (model against model), over the checked-in fuzz corpus, and end-to-end
// (placements across PlaceOptions::threads), plus the lazy-name contract:
// packed NameRefs materialize to exactly the strings the eager encoder
// used to build.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "core/encoder.h"
#include "core/instance.h"
#include "core/placer.h"
#include "io/scenario.h"
#include "solver/model.h"

#ifndef RP_CORPUS_DIR
#error "RP_CORPUS_DIR must point at tests/corpus"
#endif

namespace ruleplace::core {
namespace {

std::vector<std::string> corpusFiles() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(RP_CORPUS_DIR)) {
    if (entry.path().extension() == ".scenario") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// Bit-identity of two models: every variable (and its materialized name),
/// every CSR row (terms, comparator, rhs, name), the objective and the
/// combinatorial lower bound.
void expectModelsIdentical(const solver::Model& a, const solver::Model& b) {
  ASSERT_EQ(a.varCount(), b.varCount());
  for (solver::ModelVar v = 0; v < a.varCount(); ++v) {
    ASSERT_EQ(a.varName(v), b.varName(v)) << "var " << v;
  }
  ASSERT_EQ(a.constraintCount(), b.constraintCount());
  for (std::size_t i = 0; i < a.constraintCount(); ++i) {
    const solver::ConstraintView ca = a.constraint(i);
    const solver::ConstraintView cb = b.constraint(i);
    ASSERT_EQ(ca.cmp, cb.cmp) << "row " << i;
    ASSERT_EQ(ca.rhs, cb.rhs) << "row " << i;
    ASSERT_EQ(ca.expr.constant(), cb.expr.constant()) << "row " << i;
    ASSERT_EQ(a.name(ca.name), b.name(cb.name)) << "row " << i;
    const auto ta = ca.expr.terms();
    const auto tb = cb.expr.terms();
    ASSERT_EQ(ta.size(), tb.size()) << "row " << i;
    for (std::size_t t = 0; t < ta.size(); ++t) {
      ASSERT_EQ(ta[t], tb[t]) << "row " << i << " term " << t;
    }
  }
  ASSERT_EQ(a.hasObjective(), b.hasObjective());
  if (a.hasObjective()) {
    const auto oa = a.objective().terms();
    const auto ob = b.objective().terms();
    ASSERT_EQ(oa.size(), ob.size());
    for (std::size_t t = 0; t < oa.size(); ++t) {
      ASSERT_EQ(oa[t], ob[t]) << "objective term " << t;
    }
    ASSERT_EQ(a.objective().constant(), b.objective().constant());
  }
  ASSERT_EQ(a.hasObjectiveLowerBound(), b.hasObjectiveLowerBound());
  if (a.hasObjectiveLowerBound()) {
    ASSERT_EQ(a.objectiveLowerBound(), b.objectiveLowerBound());
  }
  ASSERT_EQ(a.nonzeroCount(), b.nonzeroCount());
}

void expectEncodersAgreeAcrossThreads(const PlacementProblem& problem,
                                      EncoderOptions opts) {
  opts.threads = 1;
  const Encoder reference(problem, opts);
  EXPECT_GT(reference.model().memoryBytes(), 0u);
  for (int threads : {2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    opts.threads = threads;
    const Encoder parallel(problem, opts);
    expectModelsIdentical(reference.model(), parallel.model());
    // The secondary outputs the placer consumes must agree too.
    const auto& sa = reference.stats();
    const auto& sb = parallel.stats();
    EXPECT_EQ(sa.placementVars, sb.placementVars);
    EXPECT_EQ(sa.ruleDependencyConstraints, sb.ruleDependencyConstraints);
    EXPECT_EQ(sa.pathDependencyConstraints, sb.pathDependencyConstraints);
    EXPECT_EQ(sa.requiredRules, sb.requiredRules);
    EXPECT_EQ(sa.objectiveLowerBound, sb.objectiveLowerBound);
    EXPECT_EQ(sa.slicedAwayRules, sb.slicedAwayRules);
    EXPECT_EQ(reference.placementKeys().size(),
              parallel.placementKeys().size());
    for (std::size_t i = 0; i < reference.placementKeys().size(); ++i) {
      const auto& ka = reference.placementKeys()[i];
      const auto& kb = parallel.placementKeys()[i];
      ASSERT_TRUE(ka.policyId == kb.policyId && ka.ruleId == kb.ruleId &&
                  ka.switchId == kb.switchId)
          << "key " << i;
    }
    EXPECT_EQ(reference.ingressHint(), parallel.ingressHint());
  }
}

// ---------------------------------------------------------------------------
// Model bit-identity, synthetic instances

TEST(ParallelEncoder, SyntheticInstanceBitIdenticalAcrossThreads) {
  InstanceConfig cfg;
  cfg.fatTreeK = 8;
  cfg.capacity = 300;
  cfg.ingressCount = 24;
  cfg.rulesPerPolicy = 40;
  cfg.totalPaths = 128;
  cfg.seed = 42;
  const Instance inst(cfg);
  expectEncodersAgreeAcrossThreads(inst.problem(), EncoderOptions{});
}

TEST(ParallelEncoder, SlicedInstanceBitIdenticalAcrossThreads) {
  InstanceConfig cfg;
  cfg.fatTreeK = 8;
  cfg.capacity = 300;
  cfg.ingressCount = 16;
  cfg.rulesPerPolicy = 32;
  cfg.totalPaths = 96;
  cfg.seed = 7;
  cfg.slicedTraffic = true;
  const Instance inst(cfg);
  EncoderOptions opts;
  opts.enablePathSlicing = true;
  expectEncodersAgreeAcrossThreads(inst.problem(), opts);
}

TEST(ParallelEncoder, UpstreamObjectiveBitIdenticalAcrossThreads) {
  InstanceConfig cfg;
  cfg.fatTreeK = 4;
  cfg.capacity = 200;
  cfg.ingressCount = 8;
  cfg.rulesPerPolicy = 24;
  cfg.totalPaths = 32;
  cfg.seed = 13;
  const Instance inst(cfg);
  EncoderOptions opts;
  opts.objective = ObjectiveKind::kUpstreamTraffic;
  expectEncodersAgreeAcrossThreads(inst.problem(), opts);
}

// ---------------------------------------------------------------------------
// Model bit-identity, corpus replay

TEST(ParallelEncoder, CorpusReplayBitIdenticalAcrossThreads) {
  std::size_t replayed = 0;
  for (const std::string& path : corpusFiles()) {
    SCOPED_TRACE(path);
    io::Scenario scenario;
    io::loadScenarioFile(path, scenario);
    expectEncodersAgreeAcrossThreads(scenario.problem(), EncoderOptions{});
    EncoderOptions sliced;
    sliced.enablePathSlicing = true;
    expectEncodersAgreeAcrossThreads(scenario.problem(), sliced);
    ++replayed;
  }
  EXPECT_GE(replayed, 5u) << "corpus directory went missing?";
}

// ---------------------------------------------------------------------------
// End-to-end: placements bit-identical across thread counts (merging
// included — place() owns the dummy-rule preprocessing the merge encoder
// needs, so the merged path is exercised through it).

TEST(ParallelEncoder, PlacementsBitIdenticalAcrossThreads) {
  InstanceConfig cfg;
  cfg.fatTreeK = 4;
  cfg.capacity = 100;
  cfg.ingressCount = 8;
  cfg.rulesPerPolicy = 12;
  cfg.totalPaths = 32;
  cfg.mergeableRules = 3;
  cfg.seed = 99;
  const Instance inst(cfg);

  for (bool merge : {false, true}) {
    SCOPED_TRACE(merge ? "merge" : "plain");
    PlaceOptions base;
    base.encoder.enableMerging = merge;
    base.threads = 1;
    // Conflict (not wall-clock) budget: deterministic across thread
    // counts even if a point ends budget-bound.
    base.budget = solver::Budget::conflicts(200000);
    const PlaceOutcome reference = place(inst.problem(), base);
    ASSERT_TRUE(reference.hasSolution());
    for (int threads : {2, 8}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      PlaceOptions opts = base;
      opts.threads = threads;
      const PlaceOutcome got = place(inst.problem(), opts);
      ASSERT_TRUE(got.hasSolution());
      EXPECT_EQ(got.status, reference.status);
      EXPECT_EQ(got.objective, reference.objective);
      EXPECT_EQ(got.modelVars, reference.modelVars);
      EXPECT_EQ(got.modelConstraints, reference.modelConstraints);
      EXPECT_EQ(got.modelNonzeros, reference.modelNonzeros);
      EXPECT_EQ(got.modelBytes, reference.modelBytes);
      ASSERT_EQ(got.placement.switchCount(),
                reference.placement.switchCount());
      for (int sw = 0; sw < reference.placement.switchCount(); ++sw) {
        ASSERT_EQ(got.placement.table(sw), reference.placement.table(sw))
            << "switch " << sw;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Lazy names: the packed NameRefs materialize to exactly the strings the
// eager encoder used to build, on demand only.

TEST(ParallelEncoder, LazyNamesMaterializeToLegacyStrings) {
  io::Scenario scenario;
  io::loadScenarioFile(std::string(RP_CORPUS_DIR) + "/tight_capacity.scenario",
                       scenario);
  EncoderOptions opts;
  opts.threads = 2;
  const Encoder enc(scenario.problem(), opts);
  const solver::Model& m = enc.model();

  // Every placement variable's name is v_<policy>_<rule>_<switch>, derived
  // from its key — materialized lazily, twice for idempotence.
  ASSERT_EQ(static_cast<std::size_t>(m.varCount()),
            enc.placementKeys().size());
  for (solver::ModelVar v = 0; v < m.varCount(); ++v) {
    const auto& key = enc.placementKeys()[static_cast<std::size_t>(v)];
    const std::string expected = "v_" + std::to_string(key.policyId) + "_" +
                                 std::to_string(key.ruleId) + "_" +
                                 std::to_string(key.switchId);
    EXPECT_EQ(m.varName(v), expected);
    EXPECT_EQ(m.varName(v), expected);  // idempotent, no cached mutation
  }

  // Constraint names follow the legacy dep_/path_/cap_ scheme.
  bool sawDep = false, sawPath = false, sawCap = false;
  for (std::size_t i = 0; i < m.constraintCount(); ++i) {
    const std::string n = m.name(m.constraint(i).name);
    if (n.rfind("dep_p", 0) == 0) sawDep = true;
    if (n.rfind("path_p", 0) == 0) sawPath = true;
    if (n.rfind("cap_s", 0) == 0) sawCap = true;
  }
  EXPECT_TRUE(sawDep);
  EXPECT_TRUE(sawPath);
  EXPECT_TRUE(sawCap);
}

TEST(LazyNames, CustomAndFixedNamesRoundTrip) {
  solver::Model m;
  const solver::ModelVar a = m.addBinary(std::string("a"));
  const solver::ModelVar b = m.addBinary();  // auto name
  m.fixVariable(a, true);
  solver::LinearExpr e;
  e.add(1, a).add(1, b);
  m.addConstraint(std::move(e), solver::Cmp::kLe, 1,
                  std::string("cap:with_colon"));
  EXPECT_EQ(m.varName(a), "a");
  EXPECT_EQ(m.varName(b), "x1");
  // fixVariable's row names itself after the pinned variable.
  bool sawFix = false;
  for (std::size_t i = 0; i < m.constraintCount(); ++i) {
    if (m.name(m.constraint(i).name) == "fix:a") sawFix = true;
  }
  EXPECT_TRUE(sawFix);
  EXPECT_EQ(m.name(m.constraint(m.constraintCount() - 1).name),
            "cap:with_colon");
}

}  // namespace
}  // namespace ruleplace::core
