// Assumption-based incremental solving (docs/solver.md "Incremental
// solving"): solve-under-assumptions and unsat cores, clause reuse across
// calls, the IncrementalOptimizer's retractable groups and pins, the
// IncrementalSession churn API, the portfolio race — plus regression tests
// for the solver re-entry bugs this work uncovered (VSIDS heap var leak,
// restart-cycle and reduceDB-threshold reset on every solve() call).

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <optional>
#include <random>
#include <vector>

#include "core/incremental.h"
#include "core/placer.h"
#include "core/verify.h"
#include "match/cubeset.h"
#include "solver/incremental.h"
#include "solver/optimize.h"
#include "solver/sat.h"

namespace ruleplace::solver {
namespace {

using SS = SolveStatus;

Lit pos(Var v) { return Lit(v, false); }
Lit neg(Var v) { return Lit(v, true); }

// ---- assumptions ----------------------------------------------------------

TEST(Assumptions, SatUnderAssumptionsAndModelRespectsThem) {
  Solver s;
  Var a = s.newVar(), b = s.newVar(), c = s.newVar();
  ASSERT_TRUE(s.addClause({pos(a), pos(b), pos(c)}));
  EXPECT_EQ(s.solve({neg(a), neg(b)}, Budget::unlimited()), SS::kSat);
  EXPECT_FALSE(s.modelValue(a));
  EXPECT_FALSE(s.modelValue(b));
  EXPECT_TRUE(s.modelValue(c));
}

TEST(Assumptions, UnsatUnderAssumptionsKeepsSolverUsable) {
  Solver s;
  Var a = s.newVar(), b = s.newVar();
  ASSERT_TRUE(s.addClause({pos(a), pos(b)}));
  EXPECT_EQ(s.solve({neg(a), neg(b)}, Budget::unlimited()), SS::kUnsat);
  EXPECT_TRUE(s.okay());  // only root conflicts poison the solver
  // The core names assumptions, not arbitrary literals, and is itself
  // jointly unsatisfiable with the database.
  const auto& core = s.unsatCore();
  ASSERT_FALSE(core.empty());
  for (Lit l : core) {
    EXPECT_TRUE((l == neg(a)) || (l == neg(b)));
  }
  // Dropping the assumptions, the instance is satisfiable again.
  EXPECT_EQ(s.solve({}, Budget::unlimited()), SS::kSat);
  EXPECT_EQ(s.solve({neg(a)}, Budget::unlimited()), SS::kSat);
  EXPECT_TRUE(s.modelValue(b));
}

TEST(Assumptions, CoreIsSubsetOfRelevantAssumptions) {
  // x0 forced true by the database; assuming ~x0 conflicts on its own while
  // the unrelated assumption x1 must stay out of the core.
  Solver s;
  Var x0 = s.newVar(), x1 = s.newVar();
  ASSERT_TRUE(s.addClause({pos(x0)}));
  EXPECT_EQ(s.solve({pos(x1), neg(x0)}, Budget::unlimited()), SS::kUnsat);
  ASSERT_EQ(s.unsatCore().size(), 1u);
  EXPECT_TRUE(s.unsatCore()[0] == neg(x0));
}

TEST(Assumptions, AssumptionsInteractWithCardinalityAndPB) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 4; ++i) v.push_back(s.newVar());
  // At least 2 of 4 true; PB: 3*x0 + x1 + x2 >= 3.
  ASSERT_TRUE(
      s.addCardinality({pos(v[0]), pos(v[1]), pos(v[2]), pos(v[3])}, 2));
  ASSERT_TRUE(s.addPB({{3, pos(v[0])}, {1, pos(v[1])}, {1, pos(v[2])}}, 3));
  EXPECT_EQ(s.solve({neg(v[0])}, Budget::unlimited()), SS::kUnsat);
  EXPECT_TRUE(s.okay());
  EXPECT_EQ(s.solve({pos(v[0]), neg(v[1]), neg(v[2])}, Budget::unlimited()),
            SS::kSat);
  EXPECT_TRUE(s.modelValue(v[3]));  // cardinality still needs a second var
}

// ---- re-entry regressions -------------------------------------------------

// Deterministic hard instance: random 3-SAT near the phase transition.
// Returned clauses are over vars [0, vars); generation is seeded, so test
// behaviour is identical on every run and platform.
std::vector<std::vector<Lit>> random3Sat(int vars, int clauses,
                                         std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> pickVar(0, vars - 1);
  std::uniform_int_distribution<int> coin(0, 1);
  std::vector<std::vector<Lit>> out;
  out.reserve(static_cast<std::size_t>(clauses));
  while (static_cast<int>(out.size()) < clauses) {
    int a = pickVar(rng), b = pickVar(rng), c = pickVar(rng);
    if (a == b || b == c || a == c) continue;
    out.push_back({Lit(a, coin(rng) == 1), Lit(b, coin(rng) == 1),
                   Lit(c, coin(rng) == 1)});
  }
  return out;
}

// Regression (pre-fix failing): restartCycle_ was a local of solve(), so
// every re-entry replayed the Luby sequence from its dense start instead of
// continuing into the sparser tail.  Two equal-conflict-budget calls on a
// hard instance then restart equally often; with the cycle persisted the
// second call must restart strictly less.
TEST(SolverReentry, RestartCyclePersistsAcrossSolves) {
  Solver s;
  for (int i = 0; i < 300; ++i) s.newVar();
  for (auto& cl : random3Sat(300, 1320, /*seed=*/7)) {
    ASSERT_TRUE(s.addClause(std::move(cl)));
  }
  ASSERT_EQ(s.solve(Budget::conflicts(3000)), SS::kUnknown);
  const std::int64_t r1 = s.stats().restarts;
  ASSERT_GT(r1, 4);  // the budget spans several Luby segments
  ASSERT_EQ(s.solve(Budget::conflicts(3000)), SS::kUnknown);
  const std::int64_t r2 = s.stats().restarts - r1;
  EXPECT_LT(r2, r1);
}

// Regression (pre-fix failing): reduceLimit_ was a local of solve(), reset
// to 4000 on every call.  A call entered with a learnt database past that
// initial threshold (but below the persisted, grown one) then dumped half
// the retained clauses on its very first step — exactly the clause reuse
// incremental solving exists to keep.
TEST(SolverReentry, ReduceThresholdPersistsAcrossSolves) {
  Solver s;
  for (int i = 0; i < 300; ++i) s.newVar();
  for (auto& cl : random3Sat(300, 1320, /*seed=*/11)) {
    ASSERT_TRUE(s.addClause(std::move(cl)));
  }
  // ~6200 conflicts: one reduceDB fires (threshold 4000, grown to 6000),
  // and the learnt count climbs back above 4000 but stays below 6000.
  ASSERT_EQ(s.solve(Budget::conflicts(6200)), SS::kUnknown);
  const std::int64_t deleted = s.stats().deletedClauses;
  ASSERT_GT(deleted, 0);  // the first reduce did happen
  ASSERT_EQ(s.solve(Budget::conflicts(64)), SS::kUnknown);
  EXPECT_EQ(s.stats().deletedClauses, deleted)
      << "re-entry reset the reduceDB threshold and dumped learnt clauses";
}

// Regression (pre-fix failing): heapPop() cleared the popped var's heap
// index before the move-from-the-back re-seat; on a single-element heap the
// self-assignment undid the clear, the var was never re-inserted, and later
// solves returned "models" with genuinely unassigned vars.  Cross-check
// repeated solves on one solver against a fresh solver per step.
// Deterministic variant: every SAT solve drains the VSIDS heap, and the
// last pop of each drain is the single-element case the bug corrupts.  Two
// constraint-free solves leak two of the three vars; a clause over all
// three added afterwards is then never propagated nor decided, and the
// pre-fix solver returns an all-false "model" violating it.
TEST(SolverReentry, HeapDrainDoesNotLoseVars) {
  Solver s;
  Var a = s.newVar(), b = s.newVar(), c = s.newVar();
  ASSERT_EQ(s.solve(Budget::unlimited()), SS::kSat);
  ASSERT_EQ(s.solve(Budget::unlimited()), SS::kSat);
  ASSERT_TRUE(s.addClause({pos(a), pos(b), pos(c)}));
  ASSERT_EQ(s.solve(Budget::unlimited()), SS::kSat);
  EXPECT_TRUE(s.modelValue(a) || s.modelValue(b) || s.modelValue(c))
      << "solver returned a \"model\" violating the only clause";
}

TEST(SolverReentry, RepeatedSolvesMatchFreshSolver) {
  for (std::uint32_t seed = 0; seed < 300; ++seed) {
    std::mt19937 rng(seed * 2654435761u + 1);
    const int vars = 3 + static_cast<int>(rng() % 8);
    Solver persistent;
    for (int i = 0; i < vars; ++i) persistent.newVar();
    std::vector<std::vector<Lit>> all;
    bool dead = false;
    for (int wave = 0; wave < 4 && !dead; ++wave) {
      const int add = 1 + static_cast<int>(rng() % (2 * vars));
      for (int c = 0; c < add; ++c) {
        const int len = 1 + static_cast<int>(rng() % 3);
        std::vector<Lit> cl;
        for (int k = 0; k < len; ++k) {
          cl.push_back(Lit(static_cast<Var>(rng() % vars), (rng() & 1) != 0));
        }
        all.push_back(cl);
        if (!persistent.addClause(cl)) dead = true;
      }
      Solver fresh;
      for (int i = 0; i < vars; ++i) fresh.newVar();
      bool freshDead = false;
      for (const auto& cl : all) {
        if (!fresh.addClause(cl)) freshDead = true;
      }
      // A persistent solver may detect a root conflict at addClause time
      // (its level-0 trail is longer); the fresh solver may only see it at
      // solve().  Either way, both must agree the instance is UNSAT.
      if (dead || freshDead) {
        if (!freshDead) {
          ASSERT_EQ(fresh.solve(Budget::unlimited()), SS::kUnsat)
              << "seed " << seed << " wave " << wave;
        }
        if (!dead) {
          ASSERT_EQ(persistent.solve(Budget::unlimited()), SS::kUnsat)
              << "seed " << seed << " wave " << wave;
        }
        break;
      }
      const SS ps = persistent.solve(Budget::unlimited());
      const SS fs = fresh.solve(Budget::unlimited());
      ASSERT_EQ(ps, fs) << "seed " << seed << " wave " << wave;
      if (ps == SS::kSat) {
        // The persistent solver's model must actually satisfy every clause.
        for (const auto& cl : all) {
          bool sat = false;
          for (Lit l : cl) {
            sat |= persistent.modelValue(l.var()) != l.sign();
          }
          ASSERT_TRUE(sat) << "seed " << seed << " wave " << wave;
        }
      }
    }
  }
}

// ---- addPB overflow guard -------------------------------------------------

TEST(PBOverflow, RejectsCoefficientSumsNearTheLimit) {
  Solver s;
  Var a = s.newVar(), b = s.newVar();
  // Coprime coefficients: gcd normalization cannot rescue the row, so the
  // guard must reject it instead of letting possibleSum overflow.
  const std::int64_t huge = std::numeric_limits<std::int64_t>::max() / 4;
  EXPECT_THROW(s.addPB({{huge, pos(a)}, {huge + 1, pos(b)}}, 1),
               std::overflow_error);
}

TEST(PBOverflow, GcdNormalizationAdmitsLargeButReducibleRows) {
  // Coefficients whose raw sum overflows the guard but whose gcd-reduced
  // form is tiny: must be accepted and propagate correctly.
  Solver s;
  Var a = s.newVar(), b = s.newVar(), c = s.newVar();
  const std::int64_t big = (std::numeric_limits<std::int64_t>::max() / 8) & ~1ll;
  ASSERT_TRUE(
      s.addPB({{big, pos(a)}, {big, pos(b)}, {big, pos(c)}}, 2 * big));
  EXPECT_EQ(s.solve({neg(a)}, Budget::unlimited()), SS::kSat);
  EXPECT_TRUE(s.modelValue(b));
  EXPECT_TRUE(s.modelValue(c));
  EXPECT_EQ(s.solve({neg(a), neg(b)}, Budget::unlimited()), SS::kUnsat);
  EXPECT_TRUE(s.okay());
}

TEST(PBOverflow, ObjectiveBoundWithLargeWeightsStillOptimizes) {
  // An optimization whose strengthening bounds carry large coefficients:
  // the guard must normalize rather than reject them.
  Model m;
  ModelVar x = m.addBinary("x"), y = m.addBinary("y"), z = m.addBinary("z");
  LinearExpr atLeastOne;
  atLeastOne.add(1, x).add(1, y).add(1, z);
  m.addConstraint(atLeastOne, Cmp::kGe, 1, "cover");
  LinearExpr obj;
  obj.add(1000000000, x).add(2000000000, y).add(3000000000, z);
  m.setObjective(obj);
  OptResult r = Optimizer::solve(m);
  ASSERT_EQ(r.status, OptStatus::kOptimal);
  EXPECT_EQ(r.objective, 1000000000);
  EXPECT_TRUE(r.assignment[static_cast<std::size_t>(x)]);
}

// ---- IncrementalOptimizer -------------------------------------------------

Constraint ge(std::vector<std::pair<std::int64_t, ModelVar>> terms,
              std::int64_t rhs, std::string = {}) {
  // The label argument is documentation only — group constraints carry no
  // interned names outside a Model.
  Constraint c;
  for (auto& [coeff, v] : terms) c.expr.add(coeff, v);
  c.cmp = Cmp::kGe;
  c.rhs = rhs;
  return c;
}

TEST(IncrementalOptimizer, GroupsActivateDeactivateRetire) {
  IncrementalOptimizer opt;
  opt.ensureVars(2);
  // Group A: x0; Group B: ~x0 (jointly unsat).
  Constraint a = ge({{1, 0}}, 1, "a");
  Constraint b;
  b.expr.add(1, 0);
  b.cmp = Cmp::kLe;
  b.rhs = 0;
  auto ga = opt.addGroup({a});
  auto gb = opt.addGroup({b});
  OptResult r = opt.solveSat(Budget::unlimited());
  EXPECT_EQ(r.status, OptStatus::kInfeasible);
  // The final conflict names both groups.
  auto core = opt.coreGroups();
  EXPECT_EQ(core.size(), 2u);
  opt.setActive(gb, false);
  r = opt.solveSat(Budget::unlimited());
  ASSERT_EQ(r.status, OptStatus::kOptimal);
  EXPECT_TRUE(r.assignment[0]);
  opt.setActive(gb, true);
  EXPECT_EQ(opt.solveSat(Budget::unlimited()).status, OptStatus::kInfeasible);
  opt.retire(ga);
  r = opt.solveSat(Budget::unlimited());
  ASSERT_EQ(r.status, OptStatus::kOptimal);
  EXPECT_FALSE(r.assignment[0]);
  EXPECT_TRUE(opt.okay());  // retirement never poisons the solver
}

TEST(IncrementalOptimizer, PinsRestrictAndReportCores) {
  IncrementalOptimizer opt;
  opt.ensureVars(3);
  // x0 + x1 + x2 >= 2.
  opt.addGroup({ge({{1, 0}, {1, 1}, {1, 2}}, 2, "card")});
  opt.pin(0, false);
  opt.pin(1, false);
  OptResult r = opt.solveSat(Budget::unlimited());
  EXPECT_EQ(r.status, OptStatus::kInfeasible);
  auto pins = opt.corePins();
  EXPECT_FALSE(pins.empty());
  for (ModelVar v : pins) EXPECT_TRUE(v == 0 || v == 1);
  opt.clearPins();
  opt.pin(0, false);
  r = opt.solveSat(Budget::unlimited());
  ASSERT_EQ(r.status, OptStatus::kOptimal);
  EXPECT_FALSE(r.assignment[0]);
  EXPECT_TRUE(r.assignment[1]);
  EXPECT_TRUE(r.assignment[2]);
}

TEST(IncrementalOptimizer, OptimizeMatchesFreshOptimizerAcrossChanges) {
  // Weighted set-cover optimized three times on ONE persistent solver with
  // the constraint set changing in between; every answer must match a
  // from-scratch Optimizer on the equivalent model.
  IncrementalOptimizer opt;
  opt.ensureVars(4);
  LinearExpr obj;
  obj.add(3, 0).add(2, 1).add(2, 2).add(5, 3);
  auto g1 = opt.addGroup({ge({{1, 0}, {1, 1}}, 1, "c1"),
                          ge({{1, 1}, {1, 2}}, 1, "c2")});
  OptResult r = opt.optimize(obj, Budget::unlimited());
  ASSERT_EQ(r.status, OptStatus::kOptimal);
  EXPECT_EQ(r.objective, 2);  // x1 covers both

  auto g2 = opt.addGroup({ge({{1, 0}, {1, 3}}, 1, "c3")});
  r = opt.optimize(obj, Budget::unlimited());
  ASSERT_EQ(r.status, OptStatus::kOptimal);
  EXPECT_EQ(r.objective, 5);  // x0 + x2 (3+2) beats x1 + min(x0,x3)

  // Retract the first group: only c3 remains.
  opt.setActive(g1, false);
  r = opt.optimize(obj, Budget::unlimited());
  ASSERT_EQ(r.status, OptStatus::kOptimal);
  EXPECT_EQ(r.objective, 3);
  (void)g2;

  // Cross-check the middle step against a fresh optimizer.
  Model m;
  for (int i = 0; i < 4; ++i) m.addBinary();
  LinearExpr c1, c2, c3;
  c1.add(1, 0).add(1, 1);
  c2.add(1, 1).add(1, 2);
  c3.add(1, 0).add(1, 3);
  m.addConstraint(c1, Cmp::kGe, 1);
  m.addConstraint(c2, Cmp::kGe, 1);
  m.addConstraint(c3, Cmp::kGe, 1);
  m.setObjective(obj);
  OptResult fresh = Optimizer::solve(m);
  ASSERT_EQ(fresh.status, OptStatus::kOptimal);
  EXPECT_EQ(fresh.objective, 5);
}

TEST(IncrementalOptimizer, ObjectiveIsMonotoneOverRepeatedOptimizeCalls) {
  // Regression for incumbent phase seeding: re-optimizing after adding
  // constraints must never report a better-than-possible objective, and
  // tightening the instance can only increase the optimum.
  IncrementalOptimizer opt;
  const int n = 8;
  opt.ensureVars(n);
  LinearExpr obj;
  for (int i = 0; i < n; ++i) obj.add(i + 1, i);
  std::vector<Constraint> cover;
  for (int i = 0; i + 1 < n; ++i) {
    cover.push_back(ge({{1, i}, {1, i + 1}}, 1));
  }
  opt.addGroup(cover);
  std::int64_t last = -1;
  for (int round = 0; round < 4; ++round) {
    OptResult r = opt.optimize(obj, Budget::unlimited());
    ASSERT_EQ(r.status, OptStatus::kOptimal) << "round " << round;
    EXPECT_GE(r.objective, last) << "round " << round;
    last = r.objective;
    // Tighten: forbid the next even var (the odd vars alone still cover
    // every adjacent pair, so the instance stays feasible all rounds).
    Constraint forbid;
    forbid.expr.add(1, 2 * round);
    forbid.cmp = Cmp::kLe;
    forbid.rhs = 0;
    opt.addGroup({forbid});
  }
}

TEST(IncrementalOptimizer, SatisfiabilityOnlyHonorsBudgetExhaustion) {
  IncrementalOptimizer opt;
  opt.ensureVars(170);
  std::vector<Constraint> cs;
  for (auto& cl : random3Sat(170, 748, /*seed=*/23)) {
    Constraint c;
    for (Lit l : cl) {
      if (l.sign()) {
        // ~x contributes (1 - x): fold into the rhs.
        c.expr.add(-1, l.var());
        c.rhs -= 1;
      } else {
        c.expr.add(1, l.var());
      }
    }
    c.cmp = Cmp::kGe;
    c.rhs += 1;
    cs.push_back(std::move(c));
  }
  opt.addGroup(cs);
  OptResult r = opt.solveSat(Budget::conflicts(10));
  EXPECT_EQ(r.status, OptStatus::kUnknown);
  EXPECT_TRUE(opt.okay());
}

}  // namespace
}  // namespace ruleplace::solver

// ---- core layer: IncrementalSession and the portfolio race ----------------

namespace ruleplace::core {
namespace {

using acl::Action;
using match::Ternary;

Ternary T(const char* s) { return Ternary::fromString(s); }

// A line of `n` switches with one ingress per policy at s0 and one egress
// at the end; every policy routes over the whole line.
struct Line {
  topo::Graph graph;
  topo::PortId out;
  std::vector<topo::SwitchId> sw;

  Line(int switches, int capacity) {
    for (int i = 0; i < switches; ++i) sw.push_back(graph.addSwitch(capacity));
    for (int i = 0; i + 1 < switches; ++i) graph.addLink(sw[i], sw[i + 1]);
    out = graph.addEntryPort(sw.back());
  }

  topo::IngressPaths routeFrom(topo::SwitchId first) {
    topo::PortId in = graph.addEntryPort(first);
    topo::Path p;
    p.ingress = in;
    p.egress = out;
    for (std::size_t i = 0; i < sw.size(); ++i) {
      if (sw[i] == first) {
        p.switches.assign(sw.begin() + static_cast<std::ptrdiff_t>(i),
                          sw.end());
        break;
      }
    }
    return {in, {p}};
  }
};

acl::Policy twoRulePolicy(const char* permit, const char* drop) {
  acl::Policy q;
  q.addRule(T(permit), Action::kPermit);
  q.addRule(T(drop), Action::kDrop);
  return q;
}

TEST(IncrementalSession, InstallMatchesScratchSolve) {
  Line net(3, 6);
  PlacementProblem base;
  base.graph = &net.graph;
  IncrementalSession session(base, Placement{});

  std::vector<topo::IngressPaths> routing{net.routeFrom(net.sw[0]),
                                          net.routeFrom(net.sw[0])};
  std::vector<acl::Policy> policies{twoRulePolicy("1010", "10**"),
                                    twoRulePolicy("0101", "01**")};
  PlaceOutcome out = session.install(routing, policies);
  ASSERT_TRUE(out.hasSolution());
  EXPECT_EQ(session.events(), 1);
  EXPECT_TRUE(verifyPlacement(session.problem(), session.placement()));

  // Single-event install from an empty base is the unrestricted problem:
  // status and optimal objective must match a from-scratch place().
  PlacementProblem scratch;
  scratch.graph = &net.graph;
  scratch.routing = routing;
  scratch.policies = policies;
  PlaceOptions opts;
  opts.encoder.enableMerging = false;
  PlaceOutcome ref = place(scratch, opts);
  ASSERT_EQ(ref.status, solver::OptStatus::kOptimal);
  EXPECT_EQ(out.status, solver::OptStatus::kOptimal);
  EXPECT_EQ(out.objective, ref.objective);
}

TEST(IncrementalSession, ChurnSequenceStaysVerifiedAndReusesTheSolver) {
  Line net(4, 5);
  PlacementProblem base;
  base.graph = &net.graph;
  IncrementalSession session(base, Placement{});

  const char* permits[] = {"1010", "0101", "1100", "0011", "1001"};
  const char* drops[] = {"10**", "01**", "11**", "00**", "1**1"};
  for (int i = 0; i < 5; ++i) {
    PlaceOutcome out = session.install({net.routeFrom(net.sw[0])},
                                       {twoRulePolicy(permits[i], drops[i])});
    ASSERT_TRUE(out.hasSolution()) << "install " << i;
    EXPECT_TRUE(verifyPlacement(session.problem(), session.placement()))
        << "install " << i;
  }
  EXPECT_EQ(session.events(), 5);
  EXPECT_EQ(session.problem().policyCount(), 5);

  // Reroute policy 2 to start mid-line; the freed capacity must be
  // reusable and the result verify.
  PlaceOutcome out = session.reroute({2}, {net.routeFrom(net.sw[1])});
  ASSERT_TRUE(out.hasSolution());
  EXPECT_TRUE(verifyPlacement(session.problem(), session.placement()));
  EXPECT_EQ(session.events(), 6);
}

TEST(IncrementalSession, FailedInstallRollsBackExactly) {
  Line net(2, 2);
  PlacementProblem base;
  base.graph = &net.graph;
  IncrementalSession session(base, Placement{});
  ASSERT_TRUE(session
                  .install({net.routeFrom(net.sw[0])},
                           {twoRulePolicy("1010", "10**")})
                  .hasSolution());
  const std::int64_t rulesBefore = session.placement().totalInstalledRules();

  // Capacity 2 per switch, 4 rules placed by two policies is fine; a third
  // two-rule policy cannot fit anywhere (2 switches x cap 2 = 4 slots).
  ASSERT_TRUE(session
                  .install({net.routeFrom(net.sw[0])},
                           {twoRulePolicy("0101", "01**")})
                  .hasSolution());
  PlaceOutcome fail = session.install({net.routeFrom(net.sw[0])},
                                      {twoRulePolicy("1100", "11**")});
  EXPECT_EQ(fail.status, solver::OptStatus::kInfeasible);
  EXPECT_EQ(session.problem().policyCount(), 2);
  EXPECT_EQ(session.placement().totalInstalledRules() - rulesBefore, 2);
  EXPECT_TRUE(verifyPlacement(session.problem(), session.placement()));

  // The session must still accept further (feasible) events after a
  // rollback — rerun the failed shape on a rerouted, shorter path is still
  // infeasible, but a reroute of an existing policy works.
  PlaceOutcome out = session.reroute({0}, {net.routeFrom(net.sw[1])});
  ASSERT_TRUE(out.hasSolution());
  EXPECT_TRUE(verifyPlacement(session.problem(), session.placement()));
}

TEST(IncrementalSession, RepackMovesEarlierSessionPlacements) {
  // Policy A fits only at s0 or s1 (its path covers both); then B's path
  // covers only s1.  If A was placed on s1, installing B forces a repack.
  // Construct it so the pinned solve is infeasible deterministically:
  // capacity 1, A routed over {s0, s1} must sit somewhere; B routed over
  // {s1} alone needs s1.  If A landed on s1 the pinned install of B is
  // infeasible and the repack must move A to s0.
  Line net(2, 1);
  PlacementProblem base;
  base.graph = &net.graph;
  IncrementalSession session(base, Placement{});
  acl::Policy single;
  single.addRule(T("10**"), Action::kDrop);
  ASSERT_TRUE(
      session.install({net.routeFrom(net.sw[0])}, {single}).hasSolution());

  acl::Policy other;
  other.addRule(T("01**"), Action::kDrop);
  PlaceOutcome out = session.install({net.routeFrom(net.sw[1])}, {other});
  ASSERT_TRUE(out.hasSolution());
  EXPECT_TRUE(verifyPlacement(session.problem(), session.placement()));
  // Whether a repack was needed depends on where the first solve put A;
  // the invariant is that B ends on s1 and A on s0.
  EXPECT_EQ(session.placement().usedCapacity(net.sw[0]), 1);
  EXPECT_EQ(session.placement().usedCapacity(net.sw[1]), 1);
}

TEST(IncrementalSession, EscalatesToFullResolveWhenConfigured) {
  // A base deployment that hogs the line so the restricted install is
  // infeasible, but a full re-solve (free to move the base) fits everyone.
  Line net(2, 3);
  PlacementProblem base;
  base.graph = &net.graph;
  base.routing = {net.routeFrom(net.sw[0])};
  base.policies = {twoRulePolicy("1010", "10**")};
  // Deploy the base policy spread across both switches: spare 2 per
  // switch, so the 3-rule newcomer pinned to s1 cannot fit restricted —
  // but a full re-solve can pull the base policy onto s0 and fit everyone.
  const auto& rules = base.policies[0].rules();
  Placement basePlacement = buildPlacement(
      base, {{0, rules[0].id, net.sw[0]}, {0, rules[1].id, net.sw[1]}});

  PlaceOptions opts;
  opts.resilience.fullResolveOnInfeasible = true;
  IncrementalSession session(base, basePlacement, opts);

  acl::Policy big;
  big.addRule(T("0101"), Action::kPermit);
  big.addRule(T("0110"), Action::kPermit);
  big.addRule(T("01**"), Action::kDrop);
  PlaceOutcome out = session.install({net.routeFrom(net.sw[1])}, {big});
  ASSERT_TRUE(out.hasSolution());
  EXPECT_TRUE(out.escalatedFullResolve);
  EXPECT_EQ(session.escalations(), 1);
  EXPECT_EQ(session.problem().policyCount(), 2);
  EXPECT_TRUE(verifyPlacement(session.problem(), session.placement()));

  // The session keeps working after adopting the full re-solve.
  PlaceOutcome next = session.reroute({1}, {net.routeFrom(net.sw[0])});
  ASSERT_TRUE(next.hasSolution());
  EXPECT_TRUE(verifyPlacement(session.problem(), session.placement()));
}

TEST(IncrementalSession, ReplayIsDeterministic) {
  auto run = [](Placement* outPlacement) {
    Line net(3, 4);
    PlacementProblem base;
    base.graph = &net.graph;
    IncrementalSession session(base, Placement{});
    EXPECT_TRUE(session
                    .install({net.routeFrom(net.sw[0]),
                              net.routeFrom(net.sw[1])},
                             {twoRulePolicy("1010", "10**"),
                              twoRulePolicy("0101", "01**")})
                    .hasSolution());
    EXPECT_TRUE(session
                    .install({net.routeFrom(net.sw[0])},
                             {twoRulePolicy("1100", "11**")})
                    .hasSolution());
    EXPECT_TRUE(
        session.reroute({0}, {net.routeFrom(net.sw[2])}).hasSolution());
    *outPlacement = session.placement();
  };
  Placement a, b;
  run(&a);
  run(&b);
  // Bit-identical tables, switch by switch.
  ASSERT_EQ(a.totalInstalledRules(), b.totalInstalledRules());
  for (topo::SwitchId sw = 0; sw < 3; ++sw) {
    ASSERT_EQ(a.table(sw).size(), b.table(sw).size()) << "switch " << sw;
    for (std::size_t i = 0; i < a.table(sw).size(); ++i) {
      EXPECT_EQ(a.table(sw)[i].tags, b.table(sw)[i].tags);
      EXPECT_EQ(a.table(sw)[i].representativeRule,
                b.table(sw)[i].representativeRule);
      EXPECT_EQ(a.table(sw)[i].priority, b.table(sw)[i].priority);
    }
  }
}

TEST(IncrementalSession, DuplicateRerouteIdsAreRejected) {
  // Regression: a duplicate policy id inside one reroute event used to
  // corrupt the session — the detach loop captured the already-cleared
  // state as the duplicate's "old" state (so a failed event rolled back to
  // the wrong place), and a committed event leaked the first duplicate's
  // constraint group as permanently active.  Duplicates are now rejected
  // before any state is touched.
  Line net(3, 6);
  PlacementProblem base;
  base.graph = &net.graph;
  IncrementalSession session(base, Placement{});
  ASSERT_TRUE(session
                  .install({net.routeFrom(net.sw[0])},
                           {twoRulePolicy("1010", "10**")})
                  .hasSolution());

  const Placement before = session.placement();
  EXPECT_THROW(session.reroute({0, 0}, {net.routeFrom(net.sw[1]),
                                        net.routeFrom(net.sw[2])}),
               std::invalid_argument);
  // The rejection left no trace: state and subsequent events are intact.
  EXPECT_TRUE(session.placement() == before);
  EXPECT_EQ(session.events(), 1);
  PlaceOutcome next = session.reroute({0}, {net.routeFrom(net.sw[1])});
  ASSERT_TRUE(next.hasSolution());
  EXPECT_TRUE(verifyPlacement(session.problem(), session.placement()));
}

TEST(IncrementalSession, BackToBackRollbacksLeaveNoTrace) {
  // The serve daemon's failure-isolation path retries a failed coalesced
  // batch event-by-event, which hammers the session with rollback after
  // rollback between commits.  The audited invariants:
  //   1. every failed event rolls problem() and placement() back
  //      bit-identically — no constraint group, capacity epoch or pin
  //      survives;
  //   2. the final state is semantically equivalent to a fresh session
  //      replaying only the committed events: same optimal objective, same
  //      per-switch usage, and it verifies.  (Bit-identical tables are NOT
  //      required across the two sessions: learned clauses and saved
  //      phases from failed solves legitimately persist and may tie-break
  //      among equally-optimal placements differently.  Determinism is
  //      over the full event sequence — see ReplayIsDeterministic.)
  Line net(3, 3);  // tight: capacity 3 per switch
  PlacementProblem base;
  base.graph = &net.graph;
  IncrementalSession churned(base, Placement{});

  // An event that cannot fit anywhere: ten disjoint drop rules against a
  // network with nine slots total — infeasible by raw capacity, whatever
  // the distribution.
  acl::Policy fat;
  for (const char* t : {"0000", "0001", "0010", "0011", "0100", "0101",
                        "0110", "0111", "1000", "1001"}) {
    fat.addRule(T(t), Action::kDrop);
  }

  struct Step {
    bool expectCommit;
    const char* permit;
    const char* drop;
  };
  const Step steps[] = {{true, "1010", "10**"},
                        {false, nullptr, nullptr},   // fat install, rolls back
                        {true, "0101", "01**"},
                        {false, nullptr, nullptr},   // fail again, back-to-back
                        {false, nullptr, nullptr},
                        {true, "1100", "11**"}};
  std::vector<topo::IngressPaths> committedRouting;
  std::vector<acl::Policy> committedPolicies;
  for (const Step& s : steps) {
    topo::IngressPaths r = net.routeFrom(net.sw[0]);
    if (s.expectCommit) {
      acl::Policy q = twoRulePolicy(s.permit, s.drop);
      ASSERT_TRUE(churned.install({r}, {q}).hasSolution());
      committedRouting.push_back(r);
      committedPolicies.push_back(q);
    } else {
      const Placement beforeFail = churned.placement();
      const int policiesBefore = churned.problem().policyCount();
      PlaceOutcome out = churned.install({r}, {fat});
      ASSERT_FALSE(out.hasSolution());
      EXPECT_TRUE(churned.placement() == beforeFail)
          << "failed install did not roll the placement back exactly";
      EXPECT_EQ(churned.problem().policyCount(), policiesBefore);
      EXPECT_TRUE(verifyPlacement(churned.problem(), churned.placement()));
    }
  }
  // Reroute policy 0 right after the rollback storm, sharing the identical
  // routing object with the replay below.
  const topo::IngressPaths rerouted = net.routeFrom(net.sw[1]);
  ASSERT_TRUE(churned.reroute({0}, {rerouted}).hasSolution());
  committedRouting[0] = rerouted;

  // Replay only the committed events on a fresh session.
  IncrementalSession replay(base, Placement{});
  for (std::size_t i = 0; i < committedPolicies.size(); ++i) {
    ASSERT_TRUE(replay
                    .install({committedRouting[i]}, {committedPolicies[i]})
                    .hasSolution());
  }
  ASSERT_TRUE(
      replay.reroute({0}, {committedRouting[0]}).hasSolution());

  EXPECT_EQ(churned.events(), replay.events());
  EXPECT_EQ(churned.problem().policyCount(), replay.problem().policyCount());
  EXPECT_TRUE(verifyPlacement(churned.problem(), churned.placement()));
  EXPECT_TRUE(verifyPlacement(replay.problem(), replay.placement()));
  EXPECT_EQ(churned.placement().totalInstalledRules(),
            replay.placement().totalInstalledRules())
      << "failed events left a semantic trace in the session";
  for (topo::SwitchId sw = 0; sw < 3; ++sw) {
    EXPECT_EQ(churned.placement().usedCapacity(sw),
              replay.placement().usedCapacity(sw))
        << "switch " << sw;
  }
}

// ---- portfolio race -------------------------------------------------------

PlacementProblem mediumProblem(Line& net, int policies) {
  PlacementProblem p;
  p.graph = &net.graph;
  const char* permits[] = {"1010", "0101", "1100", "0011"};
  const char* drops[] = {"10**", "01**", "11**", "00**"};
  for (int i = 0; i < policies; ++i) {
    p.routing.push_back(net.routeFrom(net.sw[0]));
    p.policies.push_back(twoRulePolicy(permits[i % 4], drops[i % 4]));
  }
  return p;
}

TEST(PortfolioRace, DeterministicAcrossThreadCounts) {
  Line net(3, 8);
  PlacementProblem p = mediumProblem(net, 4);
  PlaceOptions opts;
  opts.portfolio = true;
  opts.budget = solver::Budget::conflicts(500000);

  std::optional<PlaceOutcome> ref;
  for (int threads : {1, 2, 4}) {
    PlaceOptions o = opts;
    o.threads = threads;
    PlaceOutcome out = place(p, o);
    ASSERT_TRUE(out.hasSolution()) << "threads " << threads;
    EXPECT_TRUE(verifyPlacement(out.solvedProblem, out.placement));
    if (!ref.has_value()) {
      ref = std::move(out);
      continue;
    }
    EXPECT_EQ(out.status, ref->status) << "threads " << threads;
    EXPECT_EQ(out.objective, ref->objective) << "threads " << threads;
    EXPECT_EQ(out.placement.totalInstalledRules(),
              ref->placement.totalInstalledRules());
  }
}

TEST(PortfolioRace, ReportsAWinnerAndMatchesPlainSolve) {
  Line net(3, 8);
  PlacementProblem p = mediumProblem(net, 3);
  PlaceOptions plain;
  PlaceOutcome ref = place(p, plain);
  ASSERT_EQ(ref.status, solver::OptStatus::kOptimal);

  PlaceOptions raced;
  raced.portfolio = true;
  raced.threads = 4;
  PlaceOutcome out = place(p, raced);
  ASSERT_TRUE(out.hasSolution());
  EXPECT_EQ(out.objective, ref.objective);
  // Some racer won, and the winner survives into the component stats.
  ASSERT_FALSE(out.componentStats.empty());
  bool sawWinner = false;
  for (const auto& cs : out.componentStats) {
    sawWinner |= cs.portfolioWinner >= 0;
  }
  EXPECT_TRUE(sawWinner);
}

TEST(PortfolioRace, SatOnlyModeRaces) {
  Line net(3, 8);
  PlacementProblem p = mediumProblem(net, 3);
  PlaceOptions o;
  o.portfolio = true;
  o.satisfiabilityOnly = true;
  o.threads = 2;
  PlaceOutcome out = place(p, o);
  ASSERT_TRUE(out.hasSolution());
  EXPECT_TRUE(verifyPlacement(out.solvedProblem, out.placement));
}

}  // namespace
}  // namespace ruleplace::core
