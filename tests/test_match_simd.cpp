// Differential coverage for the vectorized batch overlap kernel
// (docs/performance.md): the scalar and AVX2 block-mask implementations
// must agree bit-for-bit on every input — survivor sets, counts, emission
// order — and both must agree with the per-object Ternary::overlaps
// reference.  Exercises every header width class, unaligned block tails,
// care-mask edge cases (full wildcard, single care bit, disjoint care),
// and replays the checked-in fuzz corpus through both dispatch paths.

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "depgraph/depgraph.h"
#include "fuzz/reproducer.h"
#include "match/packed.h"
#include "match/ternary.h"
#include "util/rng.h"

#ifndef RP_CORPUS_DIR
#error "RP_CORPUS_DIR must point at tests/corpus"
#endif

namespace {

using namespace ruleplace;

// Every test must leave the process-wide dispatch in its default state;
// a leaked forced kernel would silently bias every later test.
class KernelGuard {
 public:
  KernelGuard() = default;
  ~KernelGuard() { match::setOverlapKernel(match::OverlapKernel::kAuto); }
};

bool avx2Active() {
  match::setOverlapKernel(match::OverlapKernel::kAvx2);
  const bool yes =
      match::activeOverlapKernel() == match::OverlapKernel::kAvx2;
  match::setOverlapKernel(match::OverlapKernel::kAuto);
  return yes;
}

match::Ternary randomCube(util::Rng& rng, int width, double wildcardP) {
  match::Ternary t(width);
  for (int b = 0; b < width; ++b) {
    if (rng.chance(wildcardP)) continue;  // leave '*'
    t.setBit(b, static_cast<int>(rng.next() & 1));
  }
  return t;
}

match::PackedCubes pack(const std::vector<match::Ternary>& cubes) {
  match::PackedCubes p;
  p.reserve(cubes.size());
  for (const auto& c : cubes) p.append(c);
  return p;
}

// Collect + count under a forced kernel.
std::vector<std::uint32_t> collectWith(match::OverlapKernel k,
                                       const match::PackedCubes& packed,
                                       const match::Ternary& q,
                                       std::size_t begin, std::size_t end) {
  match::setOverlapKernel(k);
  std::vector<std::uint32_t> out;
  packed.collectOverlaps(q, begin, end, out);
  return out;
}

// The differential core: scalar vs AVX2 (when present) vs the per-object
// reference, over a window [begin, end) chosen to stress block tails.
void expectKernelsAgree(const std::vector<match::Ternary>& cubes,
                        const std::vector<match::Ternary>& queries,
                        std::size_t begin, std::size_t end,
                        const std::string& what) {
  const match::PackedCubes packed = pack(cubes);
  const bool haveAvx2 = avx2Active();
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const match::Ternary& q = queries[qi];
    // Ground truth straight from the scalar single-object predicate.
    std::vector<std::uint32_t> ref;
    for (std::size_t s = begin; s < end; ++s) {
      if (cubes[s].overlaps(q)) ref.push_back(static_cast<std::uint32_t>(s));
    }
    const auto scalar =
        collectWith(match::OverlapKernel::kScalar, packed, q, begin, end);
    ASSERT_EQ(scalar, ref) << what << ": scalar kernel vs Ternary::overlaps"
                           << " (query " << qi << ")";
    match::setOverlapKernel(match::OverlapKernel::kScalar);
    ASSERT_EQ(packed.countOverlaps(q, begin, end), ref.size())
        << what << ": scalar count (query " << qi << ")";
    if (haveAvx2) {
      const auto simd =
          collectWith(match::OverlapKernel::kAvx2, packed, q, begin, end);
      ASSERT_EQ(simd, ref) << what << ": avx2 kernel diverged (query " << qi
                           << ")";
      match::setOverlapKernel(match::OverlapKernel::kAvx2);
      ASSERT_EQ(packed.countOverlaps(q, begin, end), ref.size())
          << what << ": avx2 count (query " << qi << ")";
    }
    // Single-slot AoS probe agrees too (the candidate-verify hot path).
    for (std::uint32_t s : ref) {
      ASSERT_TRUE(packed.overlaps(s, q))
          << what << ": AoS probe missed slot " << s;
    }
  }
  match::setOverlapKernel(match::OverlapKernel::kAuto);
}

TEST(MatchSimd, DispatchForcingAndReporting) {
  KernelGuard guard;
  match::setOverlapKernel(match::OverlapKernel::kScalar);
  EXPECT_EQ(match::activeOverlapKernel(), match::OverlapKernel::kScalar);
  EXPECT_STREQ(match::overlapKernelName(), "scalar");

  match::setOverlapKernel(match::OverlapKernel::kAvx2);
  // Off-x86 (or pre-AVX2 hardware) the request must fall back to scalar,
  // never crash or stay unresolved.
  const auto active = match::activeOverlapKernel();
  EXPECT_TRUE(active == match::OverlapKernel::kAvx2 ||
              active == match::OverlapKernel::kScalar);
  if (active == match::OverlapKernel::kAvx2) {
    EXPECT_STREQ(match::overlapKernelName(), "avx2");
  }

  match::setOverlapKernel(match::OverlapKernel::kAuto);
  const auto resolved = match::activeOverlapKernel();
  EXPECT_TRUE(resolved == match::OverlapKernel::kAvx2 ||
              resolved == match::OverlapKernel::kScalar)
      << "auto dispatch must resolve to a concrete kernel";
}

TEST(MatchSimd, RandomizedAllWidths) {
  KernelGuard guard;
  for (int width : {1, 6, 32, 33, 63, 64, 65, 104, 127, 128}) {
    util::Rng rng(0x51D0ull + static_cast<std::uint64_t>(width));
    std::vector<match::Ternary> cubes, queries;
    for (int i = 0; i < 300; ++i) cubes.push_back(randomCube(rng, width, 0.6));
    for (int i = 0; i < 24; ++i) {
      queries.push_back(randomCube(rng, width, 0.4));
    }
    expectKernelsAgree(cubes, queries, 0, cubes.size(),
                       "width " + std::to_string(width));
  }
}

TEST(MatchSimd, UnalignedBlockTails) {
  KernelGuard guard;
  util::Rng rng(0xB10C7A11ull);
  // Sizes straddling the 64-slot block and the 4-lane SIMD step, probed
  // with begin/end offsets that land mid-block.
  for (std::size_t n : {1u, 2u, 3u, 5u, 63u, 64u, 65u, 66u, 127u, 128u,
                        129u, 255u, 257u}) {
    std::vector<match::Ternary> cubes, queries;
    for (std::size_t i = 0; i < n; ++i) {
      cubes.push_back(randomCube(rng, 104, 0.5));
    }
    for (int i = 0; i < 8; ++i) queries.push_back(randomCube(rng, 104, 0.5));
    const std::string tag = "n=" + std::to_string(n);
    expectKernelsAgree(cubes, queries, 0, n, tag + " full");
    if (n > 2) {
      const std::size_t begin = rng.below(n / 2);
      const std::size_t end = n - rng.below(n / 2);
      expectKernelsAgree(cubes, queries, begin, end,
                         tag + " window [" + std::to_string(begin) + "," +
                             std::to_string(end) + ")");
    }
  }
}

TEST(MatchSimd, CareBitEdgeCases) {
  KernelGuard guard;
  const int width = 128;
  std::vector<match::Ternary> cubes;
  // Full wildcard: overlaps everything.
  cubes.push_back(match::Ternary(width));
  // Single care bit in each word, both polarities.
  for (int bit : {0, 31, 63, 64, 100, 127}) {
    for (int v : {0, 1}) {
      match::Ternary t(width);
      t.setBit(bit, v);
      cubes.push_back(t);
    }
  }
  // Disjoint care masks: one cube pins only word-0 bits, another only
  // word-1 bits — they must overlap regardless of values.
  cubes.push_back(match::Ternary::field(width, 0, 32, 0xDEADBEEFull));
  cubes.push_back(match::Ternary::field(width, 64, 32, 0xCAFEF00Dull));
  // Fully exact cubes, equal and off-by-one-bit.
  cubes.push_back(match::Ternary::exact(width, 0x0123456789ABCDEFull,
                                        0xFEDCBA9876543210ull));
  cubes.push_back(match::Ternary::exact(width, 0x0123456789ABCDEEull,
                                        0xFEDCBA9876543210ull));
  cubes.push_back(match::Ternary::exact(width, 0x0123456789ABCDEFull,
                                        0x7EDCBA9876543210ull));

  // Query with each stored cube plus a handful of random ones: the edge
  // cubes appear on both sides of the predicate.
  std::vector<match::Ternary> queries = cubes;
  util::Rng rng(0xED6Eull);
  for (int i = 0; i < 8; ++i) queries.push_back(randomCube(rng, width, 0.3));
  expectKernelsAgree(cubes, queries, 0, cubes.size(), "care edge cases");
}

TEST(MatchSimd, CorpusReplayAgreesAcrossKernels) {
  KernelGuard guard;
  if (!avx2Active()) GTEST_SKIP() << "no AVX2 on this machine";

  depgraph::BuildOptions opts;
  opts.builder = depgraph::BuilderKind::kIndexed;
  opts.threads = 1;
  opts.cache = false;

  std::size_t files = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(RP_CORPUS_DIR)) {
    if (entry.path().extension() != ".scenario") continue;
    ++files;
    const fuzz::Reproducer rep = fuzz::loadReproducer(entry.path().string());
    for (std::size_t p = 0; p < rep.fuzzCase.policies.size(); ++p) {
      const acl::Policy& policy = rep.fuzzCase.policies[p];
      match::setOverlapKernel(match::OverlapKernel::kScalar);
      const depgraph::DependencyGraph scalarGraph(policy, opts);
      match::setOverlapKernel(match::OverlapKernel::kAvx2);
      const depgraph::DependencyGraph simdGraph(policy, opts);
      const std::string tag = entry.path().filename().string() +
                              " policy " + std::to_string(p);
      ASSERT_EQ(scalarGraph.dropRules(), simdGraph.dropRules()) << tag;
      for (int dropId : scalarGraph.dropRules()) {
        const auto a = scalarGraph.shieldsOf(dropId);
        const auto b = simdGraph.shieldsOf(dropId);
        ASSERT_EQ(std::vector<int>(a.begin(), a.end()),
                  std::vector<int>(b.begin(), b.end()))
            << tag << ": shields of drop " << dropId
            << " differ between kernels";
      }
    }
  }
  EXPECT_GE(files, 5u) << "corpus directory went missing?";
}

}  // namespace
