// Tests for dependency-graph construction and cross-policy merging,
// including the paper's Fig. 5 circular-dependency scenario.

#include <algorithm>

#include <gtest/gtest.h>

#include "acl/redundancy.h"
#include "classbench/generator.h"
#include "depgraph/depgraph.h"
#include "depgraph/merging.h"
#include "match/tuple5.h"
#include "util/rng.h"

namespace ruleplace::depgraph {
namespace {

using acl::Action;
using acl::Policy;
using match::Ternary;

Ternary T(const char* s) { return Ternary::fromString(s); }

TEST(DependencyGraph, PermitShieldsOverlappingLowerDrop) {
  Policy q;
  int permit = q.addRule(T("1*"), Action::kPermit);
  int drop = q.addRule(T("**"), Action::kDrop);
  DependencyGraph dg(q);
  ASSERT_EQ(dg.dropRules().size(), 1u);
  EXPECT_EQ(dg.dropRules()[0], drop);
  ASSERT_EQ(dg.shieldsOf(drop).size(), 1u);
  EXPECT_EQ(dg.shieldsOf(drop)[0], permit);
  EXPECT_EQ(dg.edgeCount(), 1u);
}

TEST(DependencyGraph, DisjointRulesDoNotConstrain) {
  Policy q;
  q.addRule(T("00"), Action::kPermit);
  int drop = q.addRule(T("11"), Action::kDrop);
  DependencyGraph dg(q);
  EXPECT_TRUE(dg.shieldsOf(drop).empty());
}

TEST(DependencyGraph, DropDropPairsDoNotConstrain) {
  Policy q;
  q.addRule(T("1*"), Action::kDrop);
  int lower = q.addRule(T("**"), Action::kDrop);
  DependencyGraph dg(q);
  EXPECT_TRUE(dg.shieldsOf(lower).empty());
  EXPECT_EQ(dg.dropRules().size(), 2u);
}

TEST(DependencyGraph, LowerPermitDoesNotShield) {
  Policy q;
  int drop = q.addRule(T("**"), Action::kDrop);
  q.addRule(T("1*"), Action::kPermit);  // lower priority than the drop
  DependencyGraph dg(q);
  EXPECT_TRUE(dg.shieldsOf(drop).empty());
}

TEST(DependencyGraph, MultipleShieldsCollected) {
  Policy q;
  int p1 = q.addRule(T("11*"), Action::kPermit);
  int p2 = q.addRule(T("*11"), Action::kPermit);
  int drop = q.addRule(T("***"), Action::kDrop);
  DependencyGraph dg(q);
  EXPECT_TRUE(std::ranges::equal(dg.shieldsOf(drop),
                                 std::vector<int>{p1, p2}));
  auto edges = dg.edges();
  EXPECT_EQ(edges.size(), 2u);
}

TEST(DependencyGraph, SparseRuleIdsUseDenseStorage) {
  // Regression: shield storage used to be sized maxRuleId + 1, so a policy
  // whose ids grew sparse through add/remove churn allocated slots for
  // every id ever assigned.  Storage must scale with the number of drop
  // rules, not the id range.
  Policy q;
  int p1 = q.addRule(T("11*"), Action::kPermit);
  int p2 = q.addRule(T("*11"), Action::kPermit);
  int drop = q.addRule(T("***"), Action::kDrop);
  const int dropPriority = q.rules().back().priority;

  // Churn the drop rule: every cycle burns a fresh id (Policy ids only
  // grow), leaving maxRuleId >> rule count.
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(q.removeRule(drop));
    drop = q.addRuleWithPriority(T("***"), Action::kDrop, dropPriority);
  }
  ASSERT_GT(drop, 5000);
  ASSERT_EQ(q.size(), 3u);

  DependencyGraph dg(q);
  // One shield slot per drop rule, regardless of how large ids grew.
  EXPECT_EQ(dg.shieldSlotCount(), 1u);
  // Lookups by the churned (sparse) id still resolve correctly.
  EXPECT_TRUE(std::ranges::equal(dg.shieldsOf(drop),
                                 std::vector<int>{p1, p2}));
  EXPECT_TRUE(dg.shieldsOf(drop - 1).empty());  // stale id: no edges
  EXPECT_EQ(dg.edgeCount(), 2u);
}

TEST(OrderSensitive, OppositeActionsAndOverlapOnly) {
  acl::Rule permit{T("1*"), Action::kPermit, 2, 0, false};
  acl::Rule drop{T("11"), Action::kDrop, 1, 1, false};
  acl::Rule dropFar{T("00"), Action::kDrop, 0, 2, false};
  EXPECT_TRUE(orderSensitive(permit, drop));
  EXPECT_FALSE(orderSensitive(permit, dropFar));
  EXPECT_FALSE(orderSensitive(drop, dropFar));
}

TEST(Merging, IdenticalRulesAcrossPoliciesFormGroups) {
  std::vector<Policy> policies(3);
  Ternary blacklist = T("1010");
  for (auto& q : policies) {
    q.addRule(T("01*0"), Action::kPermit);  // distinct context rule is fine
    q.addRule(blacklist, Action::kDrop);
  }
  MergeAnalysis ma = analyzeMergeable(policies);
  ASSERT_EQ(ma.groups.size(), 2u);  // the permit is identical everywhere too
  for (const auto& g : ma.groups) {
    EXPECT_EQ(g.members.size(), 3u);
  }
  EXPECT_EQ(ma.cyclesBroken, 0);
}

TEST(Merging, NonIdenticalRulesDoNotMerge) {
  std::vector<Policy> policies(2);
  policies[0].addRule(T("10"), Action::kDrop);
  policies[1].addRule(T("10"), Action::kPermit);  // same match, other action
  MergeAnalysis ma = analyzeMergeable(policies);
  EXPECT_TRUE(ma.groups.empty());
}

TEST(Merging, SinglePolicyNeverMerges) {
  std::vector<Policy> policies(1);
  policies[0].addRule(T("10"), Action::kDrop);
  policies[0].addRule(T("01"), Action::kDrop);
  MergeAnalysis ma = analyzeMergeable(policies);
  EXPECT_TRUE(ma.groups.empty());
}

// The paper's Fig. 5: permit r1 = src 10.0.0.0/16, dst 11.0.0.0/8;
// drop r2 = src 10.0.0.0/8, dst 11.0.0.0/16.  Policies A and B order r1
// above r2; policy C reverses them -> circular dependency, broken by a
// dummy copy of r2 in C.
TEST(Merging, Figure5CircularDependencyIsBroken) {
  match::Tuple5 r1;
  r1.src = {0x0a000000u, 16};
  r1.dst = {0x0b000000u, 8};
  match::Tuple5 r2;
  r2.src = {0x0a000000u, 8};
  r2.dst = {0x0b000000u, 16};
  Ternary m1 = r1.toTernary();
  Ternary m2 = r2.toTernary();
  ASSERT_TRUE(m1.overlaps(m2));

  std::vector<Policy> policies(3);
  policies[0].addRule(m1, Action::kPermit);
  policies[0].addRule(m2, Action::kDrop);
  policies[1].addRule(m1, Action::kPermit);
  policies[1].addRule(m2, Action::kDrop);
  policies[2].addRule(m2, Action::kDrop);    // C: r2 first
  policies[2].addRule(m1, Action::kPermit);  // then r1

  MergeAnalysis ma = analyzeMergeable(policies);
  EXPECT_GE(ma.cyclesBroken, 1);
  ASSERT_EQ(ma.dummies.size(), 1u);
  EXPECT_EQ(ma.dummies[0].policyId, 2);
  // The dummy sits at the bottom of policy C and is semantically dead.
  const Policy& c = policies[2];
  EXPECT_EQ(c.size(), 3u);
  EXPECT_TRUE(c.rules().back().dummy);
  Policy before;
  before.addRule(m2, Action::kDrop);
  before.addRule(m1, Action::kPermit);
  EXPECT_TRUE(c.semanticallyEquals(before));

  // Both groups still merge across all three policies (C contributes the
  // dummy for r2), and the final order graph is acyclic.
  ASSERT_EQ(ma.groups.size(), 2u);
  for (const auto& g : ma.groups) {
    EXPECT_EQ(g.members.size(), 3u);
  }
  EXPECT_EQ(ma.groupOrder.size(), 2u);
  // The permit group must come first in the shared order.
  const MergeGroup& first =
      ma.groups[static_cast<std::size_t>(ma.groupOrder[0])];
  EXPECT_EQ(first.action, Action::kPermit);
}

TEST(Merging, TwoPolicyDisagreementAlsoBreaks) {
  // Minimal cycle: two policies, two interacting rules, opposite orders.
  Ternary m1 = T("1***");
  Ternary m2 = T("11**");
  std::vector<Policy> policies(2);
  policies[0].addRule(m1, Action::kPermit);
  policies[0].addRule(m2, Action::kDrop);
  policies[1].addRule(m2, Action::kDrop);
  policies[1].addRule(m1, Action::kPermit);
  MergeAnalysis ma = analyzeMergeable(policies);
  EXPECT_GE(ma.cyclesBroken, 1);
  // Semantics preserved in both policies.
  for (const auto& q : policies) {
    for (const auto& r : q.rules()) {
      if (r.dummy) {
        EXPECT_TRUE(acl::isRedundant(q, r.id));
      }
    }
  }
  // Order graph acyclic on the surviving groups.
  EXPECT_EQ(ma.groupOrder.size(), ma.groups.size());
}

TEST(Merging, GroupOrderRespectsEveryPolicy) {
  // Three mergeable rules with consistent relative order everywhere.
  Ternary a = T("1***");   // permit
  Ternary b = T("11**");   // drop (interacts with a)
  Ternary c = T("111*");   // permit (interacts with b)
  std::vector<Policy> policies(2);
  for (auto& q : policies) {
    q.addRule(a, Action::kPermit);
    q.addRule(b, Action::kDrop);
    q.addRule(c, Action::kPermit);
  }
  MergeAnalysis ma = analyzeMergeable(policies);
  ASSERT_EQ(ma.groups.size(), 3u);
  EXPECT_EQ(ma.cyclesBroken, 0);
  // In groupOrder, group(a) precedes group(b) precedes group(c).
  auto posOf = [&](const Ternary& field) {
    for (std::size_t i = 0; i < ma.groupOrder.size(); ++i) {
      if (ma.groups[static_cast<std::size_t>(ma.groupOrder[i])].matchField ==
          field) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };
  EXPECT_LT(posOf(a), posOf(b));
  EXPECT_LT(posOf(b), posOf(c));
}

// Property: on generated multi-tenant policies with a shared blacklist,
// merging always terminates, groups have >= 2 members, and any inserted
// dummies are redundant (semantics preserved).
class MergingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MergingProperty, TerminatesAndPreservesSemantics) {
  util::Rng rng(GetParam());
  classbench::GeneratorConfig cfg;
  cfg.rulesPerPolicy = 12;
  classbench::PolicyGenerator gen(cfg, rng.next());
  auto blacklist = gen.globalBlacklist(4);
  std::vector<Policy> policies;
  std::vector<Policy> originals;
  for (int i = 0; i < 4; ++i) {
    Policy q = gen.generate();
    classbench::PolicyGenerator::appendShared(q, blacklist);
    policies.push_back(q);
    originals.push_back(q);
  }
  MergeAnalysis ma = analyzeMergeable(policies);
  EXPECT_GE(ma.groups.size(), 4u);  // at least the blacklist rules merge
  for (const auto& g : ma.groups) {
    EXPECT_GE(g.members.size(), 2u);
  }
  for (std::size_t i = 0; i < policies.size(); ++i) {
    EXPECT_TRUE(policies[i].semanticallyEquals(originals[i]));
  }
  EXPECT_EQ(ma.groupOrder.size(), ma.groups.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergingProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace ruleplace::depgraph
