// Crash-safety and overload tests for the serve daemon (docs/robustness.md
// "Crash consistency").
//
// The discipline mirrors the fuzz subsystem's three-way oracle: a reference
// run on a fault-free in-memory filesystem defines the expected end state,
// then the crash-point harness kills the daemon at every interesting IO
// (mid-append, mid-fsync, mid-snapshot-cut, with and without torn tails),
// recovers from each surviving disk image, completes the same stream, and
// demands the final composed placement be BIT-IDENTICAL to the reference —
// plus semantic verification, so both oracles must agree.
//
// Pinned invariants:
//   * with fsync=always, no acked event is ever lost: every seq acked
//     before the crash is rejected as out-of-order by the recovered daemon;
//   * un-acked events may vanish but never half-apply — re-sending them
//     after recovery converges to the reference state;
//   * corrupt journals (torn, bit-flipped, duplicated, garbage — the
//     committed corpus under tests/corpus/journal/) recover to a verified
//     state or a clean diagnostic, never a crash or silent divergence;
//   * the admission ladder sheds with a retryable reply and bounded queues,
//     and the accounting identity enqueued == committed + failed holds at
//     quiescence.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/verify.h"
#include "serve/churn_gen.h"
#include "serve/daemon.h"
#include "serve/journal.h"
#include "serve/protocol.h"
#include "util/fault_fs.h"

namespace ruleplace::serve {
namespace {

constexpr const char* kJournalDir = "jd";

ChurnConfig smallChurn() {
  ChurnConfig c;
  c.fatTreeK = 4;
  c.switchCapacity = 128;
  c.basePolicies = 8;
  c.rulesPerPolicy = 4;
  c.seed = 7;
  c.installWeight = 0.30;
  c.rerouteWeight = 0.60;
  c.capacityWeight = 0.0;
  c.uninstallWeight = 0.10;
  return c;
}

DaemonOptions journalOpts(util::Vfs* vfs, FsyncMode mode) {
  DaemonOptions o;
  o.shards = 1;
  o.debounceSeconds = -1.0;  // deterministic: drains only at flush()
  o.journalDir = kJournalDir;
  o.journalFsync = mode;
  o.snapshotEveryEvents = 16;  // several generation cuts per run
  // Bit-identity needs history-free solving: rebasing after every batch
  // makes each solve start from a freshly constructed session, so a
  // recovered daemon (whose session is rebuilt from the snapshot) solves
  // the pending tail exactly as the uninterrupted run did.  With warm
  // multi-batch sessions the recovered tail is only semantically
  // equivalent (docs/robustness.md).
  o.rebaseEvents = 1;
  o.vfs = vfs;
  return o;
}

/// Feed `lines` in fixed-size chunks with a flush() after each chunk, so
/// batch boundaries are a pure function of the stream — the property that
/// makes a recovered run's re-solve bit-identical to the reference run.
/// Stops early once the filesystem crashed.  Records acked seqs.
///
/// `skipFlushThroughSeq`: on a recovered daemon, journaled-but-uncommitted
/// events sit re-enqueued in the queue from construction; draining them at
/// an earlier (empty) chunk boundary would split the reference's batch in
/// two.  Callers pass the last line index of the chunk holding the newest
/// pending event, minus one, so the first flush lands exactly where the
/// reference flushed that batch.
constexpr std::size_t kChunk = 8;

void feedChunked(Daemon& daemon, const std::vector<std::string>& lines,
                 util::FaultFs* fs, std::vector<std::int64_t>* acked,
                 std::int64_t skipFlushThroughSeq = -1) {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (fs != nullptr && fs->crashed()) return;
    const std::string response = daemon.handleLine(lines[i]);
    if (acked != nullptr &&
        response.rfind("{\"ok\":true,\"seq\":", 0) == 0) {
      acked->push_back(static_cast<std::int64_t>(i));
    }
    if ((i + 1) % kChunk == 0 &&
        static_cast<std::int64_t>(i) > skipFlushThroughSeq) {
      if (fs != nullptr && fs->crashed()) return;
      daemon.flush();
    }
  }
  if (fs == nullptr || !fs->crashed()) daemon.flush();
}

struct RunResult {
  core::Placement placement;
  std::vector<int> globalIds;
  bool verified = false;
};

RunResult composedOf(const Daemon& daemon, const io::Scenario&) {
  const Daemon::Composed c = daemon.compose();
  RunResult r;
  r.placement = c.placement;
  r.globalIds = c.globalIds;
  r.verified = core::verifyPlacement(c.problem, c.placement).ok;
  return r;
}

// ---- journal round-trip ----------------------------------------------------

TEST(Journal, EventAndSnapshotRoundTripThroughRecovery) {
  util::FaultFs fs;
  JournalOptions jo;
  jo.dir = kJournalDir;
  jo.fsync = FsyncMode::kAlways;
  jo.snapshotEveryEvents = 0;
  jo.vfs = &fs;

  SnapshotState base;
  base.shards.resize(1);
  base.shards[0].placement = core::Placement(2);
  base.shards[0].capacityShare = {100, 100};

  {
    Journal j(jo, 0, true);
    Event e;
    e.kind = EventKind::kCapacity;
    e.seq = 0;
    e.switchId = 1;
    e.capacity = 123;
    std::string err;
    ASSERT_TRUE(j.appendEvent(e, 0, &err)) << err;
    e.seq = 1;
    e.capacity = 124;
    ASSERT_TRUE(j.appendEvent(e, 0, &err)) << err;

    CommitRecord record;
    record.shard = 0;
    record.maxSeq = 0;
    record.committedSeqs = {0};
    ASSERT_TRUE(j.appendCommit(record, &err)) << err;
  }

  const RecoveredState rec = Journal::recover(jo, base);
  ASSERT_TRUE(rec.hasState);
  EXPECT_EQ(rec.generation, 0);
  EXPECT_EQ(rec.replayedCommits, 1);
  // Seq 0 committed (capacity applied via structural replay); seq 1 pending.
  EXPECT_EQ(rec.state.shards[0].capacityShare[1], 123);
  ASSERT_EQ(rec.pending.size(), 1u);
  EXPECT_EQ(rec.pending[0].seq, 1);
  EXPECT_EQ(rec.pending[0].capacity, 124);
  EXPECT_EQ(rec.state.lastSeq, 1);
  EXPECT_EQ(rec.state.shards[0].lastCommittedSeq, 0);
}

TEST(Journal, SnapshotCutCarriesPendingAndPrunesOldGenerations) {
  util::FaultFs fs;
  JournalOptions jo;
  jo.dir = kJournalDir;
  jo.fsync = FsyncMode::kAlways;
  jo.vfs = &fs;

  SnapshotState base;
  base.shards.resize(1);
  base.shards[0].placement = core::Placement(1);
  base.shards[0].capacityShare = {50};

  Journal j(jo, 0, true);
  std::string err;
  Event e;
  e.kind = EventKind::kCapacity;
  e.seq = 5;
  e.switchId = 0;
  e.capacity = 60;
  ASSERT_TRUE(j.appendEvent(e, 0, &err)) << err;

  // Cut two generations; the pending (uncommitted) event must ride along.
  SnapshotState cut = base;
  ASSERT_TRUE(j.writeSnapshot(cut, &err)) << err;
  EXPECT_EQ(j.generation(), 1);
  ASSERT_TRUE(j.writeSnapshot(cut, &err)) << err;
  EXPECT_EQ(j.generation(), 2);

  // Generation 0 pruned (1 kept as fallback, 2 current).
  const auto files = fs.durableFiles();
  EXPECT_EQ(files.count("jd/wal-0.bin"), 0u);
  EXPECT_EQ(files.count("jd/wal-1.bin"), 1u);
  EXPECT_EQ(files.count("jd/wal-2.bin"), 1u);
  EXPECT_EQ(files.count("jd/snapshot-2.bin"), 1u);

  const RecoveredState rec = Journal::recover(jo, base);
  ASSERT_TRUE(rec.hasState);
  EXPECT_EQ(rec.generation, 2);
  ASSERT_EQ(rec.pending.size(), 1u);
  EXPECT_EQ(rec.pending[0].seq, 5);
}

// ---- crash-point matrix ----------------------------------------------------

struct Reference {
  io::Scenario scenario;
  std::vector<std::string> lines;
  RunResult result;
  std::int64_t appendOps = 0;
  std::int64_t syncOps = 0;
};

void buildReference(FsyncMode mode, std::int64_t events, Reference& ref) {
  const ChurnConfig cfg = [&] {
    ChurnConfig c = smallChurn();
    c.events = events;
    return c;
  }();
  churnScenario(cfg, ref.scenario);
  ref.lines = churnLines(cfg, 0, events);
  util::FaultFs fs;
  Daemon daemon(ref.scenario, journalOpts(&fs, mode));
  feedChunked(daemon, ref.lines, &fs, nullptr);
  ref.result = composedOf(daemon, ref.scenario);
  EXPECT_TRUE(ref.result.verified);
  ref.appendOps = fs.appendOps();
  ref.syncOps = fs.syncOps();
}

/// Crash a run at the scripted point, recover over the surviving image,
/// finish the stream, and compare bit-identically against the reference.
void crashAndRecover(const Reference& ref, FsyncMode mode,
                     const util::FaultPlan& plan, const char* what) {
  util::FaultFs fs;
  fs.setPlan(plan);
  std::vector<std::int64_t> acked;
  try {
    Daemon daemon(ref.scenario, journalOpts(&fs, mode));
    feedChunked(daemon, ref.lines, &fs, &acked);
    if (!fs.crashed()) fs.crashNow();  // plan landed after the stream
  } catch (const std::exception& ex) {
    // Dying mid-construction (e.g. the wal header's fsync was the crash
    // point) is itself a crash; anything else is a real failure.
    ASSERT_TRUE(fs.crashed()) << what << ": threw without a crash: "
                              << ex.what();
  }
  fs.restart();
  fs.setPlan(util::FaultPlan{});  // fault-free recovery

  Daemon daemon(ref.scenario, journalOpts(&fs, mode));
  if (mode == FsyncMode::kAlways) {
    // No acked event is ever lost: every acked seq is already applied (or
    // queued), so re-sending it must be rejected as out-of-order.
    for (std::int64_t seq : acked) {
      const std::string response = daemon.handleLine(ref.lines[
          static_cast<std::size_t>(seq)]);
      EXPECT_NE(response.find("out-of-order"), std::string::npos)
          << what << ": acked seq " << seq << " was lost: " << response;
    }
  }
  // Completing the stream converges on the reference: already-applied seqs
  // bounce off the seq check, lost un-acked ones apply now.  Intermediate
  // flushes are suppressed until the feed reaches the end of the chunk
  // holding the newest recovered-pending event, so that chunk's batch
  // re-forms exactly as the reference solved it (see feedChunked).
  const Daemon::Stats recStats = daemon.stats();
  std::int64_t skip = -1;
  if (recStats.queueDepth > 0) {
    const std::int64_t chunk = static_cast<std::int64_t>(kChunk);
    skip = (recStats.lastSeq / chunk) * chunk + chunk - 2;
  }
  feedChunked(daemon, ref.lines, &fs, nullptr, skip);
  const RunResult got = composedOf(daemon, ref.scenario);
  EXPECT_TRUE(got.verified) << what;
  EXPECT_EQ(got.globalIds, ref.result.globalIds) << what;
  EXPECT_TRUE(got.placement == ref.result.placement)
      << what << ": recovered placement diverges from uninterrupted run";
}

TEST(CrashMatrix, EveryWriteCrashRecoversBitIdentical) {
  Reference ref;
  buildReference(FsyncMode::kAlways, 40, ref);
  ASSERT_GT(ref.appendOps, 10);
  // Every write is a crash point: mid-wal, mid-commit, mid-snapshot and
  // mid-compaction (the reference cuts generations every 16 events).
  for (std::int64_t k = 1; k < ref.appendOps; ++k) {
    util::FaultPlan plan;
    plan.crashAtWrite = k;
    crashAndRecover(ref, FsyncMode::kAlways, plan,
                    ("crash at write " + std::to_string(k)).c_str());
  }
}

TEST(CrashMatrix, TornTailsRecover) {
  Reference ref;
  buildReference(FsyncMode::kAlways, 40, ref);
  const std::int64_t step = std::max<std::int64_t>(1, ref.appendOps / 5);
  for (std::int64_t k = 1; k < ref.appendOps; k += step) {
    util::FaultPlan plan;
    plan.crashAtWrite = k;
    plan.crashKeepBytes = 5;         // the fatal append lands partially
    plan.unsyncedSurvivalBytes = 3;  // unsynced tails survive torn
    crashAndRecover(ref, FsyncMode::kAlways, plan,
                    ("torn crash at write " + std::to_string(k)).c_str());
  }
}

TEST(CrashMatrix, FsyncCrashesRecover) {
  Reference ref;
  buildReference(FsyncMode::kAlways, 40, ref);
  ASSERT_GT(ref.syncOps, 4);
  const std::int64_t step = std::max<std::int64_t>(1, ref.syncOps / 6);
  for (std::int64_t k = 0; k < ref.syncOps; k += step) {
    util::FaultPlan plan;
    plan.crashAtSync = k;
    crashAndRecover(ref, FsyncMode::kAlways, plan,
                    ("crash at fsync " + std::to_string(k)).c_str());
  }
}

TEST(CrashMatrix, BatchModeConvergesAfterCrash) {
  // kBatch may lose acked events (no per-event fsync); re-sending the
  // stream must still converge bit-identically.
  Reference ref;
  buildReference(FsyncMode::kBatch, 40, ref);
  const std::int64_t step = std::max<std::int64_t>(1, ref.appendOps / 6);
  for (std::int64_t k = 1; k < ref.appendOps; k += step) {
    util::FaultPlan plan;
    plan.crashAtWrite = k;
    plan.unsyncedSurvivalBytes = 64;  // some unsynced frames survive whole
    crashAndRecover(ref, FsyncMode::kBatch, plan,
                    ("batch crash at write " + std::to_string(k)).c_str());
  }
}

TEST(CrashMatrix, FailedFsyncRejectsEventAndDaemonContinues) {
  io::Scenario scenario;
  ChurnConfig cfg = smallChurn();
  cfg.events = 12;
  churnScenario(cfg, scenario);
  const std::vector<std::string> lines = churnLines(cfg, 0, cfg.events);

  util::FaultFs fs;
  util::FaultPlan plan;
  plan.failSyncAt = 3;  // one fsync reports failure, then IO heals
  fs.setPlan(plan);
  Daemon daemon(scenario, journalOpts(&fs, FsyncMode::kAlways));
  int rejected = 0;
  for (const std::string& line : lines) {
    const std::string response = daemon.handleLine(line);
    if (response.find("journal") != std::string::npos &&
        response.find("rejected") != std::string::npos) {
      ++rejected;
    }
  }
  daemon.flush();
  EXPECT_EQ(rejected, 1);
  const RunResult got = composedOf(daemon, scenario);
  EXPECT_TRUE(got.verified);
  // The rejected event never half-applied: accounting stays consistent.
  const Daemon::Stats st = daemon.stats();
  EXPECT_EQ(st.totals.enqueued, st.totals.committed + st.totals.failed);
}

// ---- corrupted-journal corpus ---------------------------------------------

std::string corpusFile(const std::string& name) {
  const std::string path = std::string(RP_CORPUS_DIR) + "/journal/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

SnapshotState corpusBase() {
  SnapshotState base;
  base.shards.resize(1);
  base.shards[0].placement = core::Placement(4);
  base.shards[0].capacityShare = {100, 100, 100, 100};
  return base;
}

TEST(Corpus, CorruptJournalsRecoverOrDiagnoseCleanly) {
  struct Case {
    const char* file;
    bool expectState;    ///< best-usable-prefix recovery succeeds
    bool expectDiag;     ///< a diagnostic names the damage
    std::size_t minPending;
  };
  const Case cases[] = {
      {"wal0-truncated.bin", true, true, 2},    // torn third frame
      {"wal0-bitflip.bin", true, true, 1},      // CRC stops the replay
      {"wal0-dup-seq.bin", true, true, 2},      // duplicate kept once
      {"wal0-bad-payload.bin", true, true, 1},  // CRC-valid, unparseable
      {"wal0-bad-header.bin", false, true, 0},
      {"wal0-garbage.bin", false, true, 0},
      {"wal0-empty.bin", false, true, 0},
  };
  for (const Case& c : cases) {
    util::FaultFs fs;
    fs.installFile(std::string(kJournalDir) + "/wal-0.bin",
                   corpusFile(c.file));
    JournalOptions jo;
    jo.dir = kJournalDir;
    jo.vfs = &fs;
    const RecoveredState rec = Journal::recover(jo, corpusBase());
    EXPECT_EQ(rec.hasState, c.expectState) << c.file;
    if (c.expectDiag) {
      EXPECT_FALSE(rec.diagnostics.empty()) << c.file;
    }
    if (rec.hasState) {
      EXPECT_GE(rec.pending.size(), c.minPending) << c.file;
      // Duplicate frames never double-apply: pending seqs are unique.
      std::map<std::int64_t, int> seen;
      for (const Event& e : rec.pending) {
        EXPECT_EQ(seen[e.seq]++, 0) << c.file << " seq " << e.seq;
      }
    }
  }
}

TEST(Corpus, DaemonServesOverEveryCorpusImage) {
  // End-to-end: a daemon constructed over each damaged image must come up
  // (recovered or fresh), answer queries, and verify its placement.
  const char* files[] = {
      "wal0-truncated.bin", "wal0-bitflip.bin",   "wal0-dup-seq.bin",
      "wal0-bad-payload.bin", "wal0-bad-header.bin", "wal0-garbage.bin",
      "wal0-empty.bin",
  };
  io::Scenario scenario;
  ChurnConfig cfg = smallChurn();
  churnScenario(cfg, scenario);
  for (const char* file : files) {
    util::FaultFs fs;
    fs.installFile(std::string(kJournalDir) + "/wal-0.bin", corpusFile(file));
    Daemon daemon(scenario, journalOpts(&fs, FsyncMode::kAlways));
    daemon.flush();
    const RunResult got = composedOf(daemon, scenario);
    EXPECT_TRUE(got.verified) << file;
  }
}

// ---- uninstall -------------------------------------------------------------

TEST(Uninstall, ParseAddressingIsExclusive) {
  topo::Graph g;
  io::Scenario scenario;
  ChurnConfig cfg = smallChurn();
  churnScenario(cfg, scenario);
  const NameIndex names(scenario.graph);
  EXPECT_EQ(parseRequest(R"({"op":"uninstall","seq":1,"policy":3})", names)
                .event.policyId,
            3);
  EXPECT_EQ(parseRequest(R"({"op":"uninstall","seq":1,"install_seq":9})",
                         names)
                .event.installSeq,
            9);
  EXPECT_THROW(parseRequest(R"({"op":"uninstall","seq":1})", names),
               ProtocolError);
  EXPECT_THROW(parseRequest(
                   R"({"op":"uninstall","seq":1,"policy":3,"install_seq":9})",
                   names),
               ProtocolError);
}

TEST(Uninstall, RemovesPolicyAndRejectsDoubleRemoval) {
  io::Scenario scenario;
  ChurnConfig cfg = smallChurn();
  churnScenario(cfg, scenario);
  DaemonOptions o;
  o.shards = 1;
  o.debounceSeconds = -1.0;
  Daemon daemon(scenario, o);

  const std::string install =
      R"({"op":"install","seq":0,"ingress":0,"egress":5,"rules":["permit src 10.0.0.0/8"]})";
  ASSERT_EQ(daemon.handleLine(install).rfind("{\"ok\":true", 0), 0u);
  daemon.flush();
  const std::int64_t before =
      static_cast<std::int64_t>(daemon.compose().globalIds.size());

  const int gid = static_cast<int>(before - 1);
  ASSERT_EQ(daemon
                .handleLine("{\"op\":\"uninstall\",\"seq\":1,\"policy\":" +
                            std::to_string(gid) + "}")
                .rfind("{\"ok\":true", 0),
            0u);
  daemon.flush();
  EXPECT_EQ(static_cast<std::int64_t>(daemon.compose().globalIds.size()),
            before - 1);

  // Double removal and stale install_seq addressing are rejected at ingest.
  EXPECT_NE(daemon
                .handleLine("{\"op\":\"uninstall\",\"seq\":2,\"policy\":" +
                            std::to_string(gid) + "}")
                .find("not installed"),
            std::string::npos);
  EXPECT_NE(daemon.handleLine(
                     R"({"op":"uninstall","seq":2,"install_seq":0})")
                .find("unknown install_seq"),
            std::string::npos);
  const RunResult got = composedOf(daemon, scenario);
  EXPECT_TRUE(got.verified);
}

TEST(Uninstall, InstallUninstallPairFoldsInOneBatch) {
  io::Scenario scenario;
  ChurnConfig cfg = smallChurn();
  churnScenario(cfg, scenario);
  DaemonOptions o;
  o.shards = 1;
  o.debounceSeconds = -1.0;  // both events land in the same batch
  Daemon daemon(scenario, o);
  const std::int64_t before =
      static_cast<std::int64_t>(daemon.compose().globalIds.size());

  ASSERT_EQ(
      daemon
          .handleLine(
              R"({"op":"install","seq":0,"ingress":0,"egress":5,"rules":["permit src 10.0.0.0/8"]})")
          .rfind("{\"ok\":true", 0),
      0u);
  ASSERT_EQ(daemon.handleLine(
                     R"({"op":"uninstall","seq":1,"install_seq":0})")
                .rfind("{\"ok\":true", 0),
            0u);
  daemon.flush();

  EXPECT_EQ(static_cast<std::int64_t>(daemon.compose().globalIds.size()),
            before);
  const Daemon::Stats st = daemon.stats();
  EXPECT_GE(st.totals.coalesced, 2);  // the folded pair never hit the solver
  EXPECT_EQ(st.totals.enqueued, st.totals.committed + st.totals.failed);
}

TEST(Uninstall, ChurnStreamWithRemovalsVerifies) {
  io::Scenario scenario;
  ChurnConfig cfg = smallChurn();
  cfg.events = 60;
  churnScenario(cfg, scenario);
  DaemonOptions o;
  o.shards = 1;
  o.debounceSeconds = -1.0;
  Daemon daemon(scenario, o);
  feedChunked(daemon, churnLines(cfg, 0, cfg.events), nullptr, nullptr);
  const RunResult got = composedOf(daemon, scenario);
  EXPECT_TRUE(got.verified);
  const Daemon::Stats st = daemon.stats();
  EXPECT_EQ(st.totals.enqueued, st.totals.committed + st.totals.failed);
}

// ---- admission control -----------------------------------------------------

TEST(Admission, ShedsAboveMaxQueueAndRecoversAfterDrain) {
  io::Scenario scenario;
  ChurnConfig cfg = smallChurn();
  churnScenario(cfg, scenario);
  DaemonOptions o;
  o.shards = 1;
  o.debounceSeconds = -1.0;  // nothing drains until flush(): depth only grows
  o.maxQueue = 8;
  Daemon daemon(scenario, o);

  const std::vector<std::string> lines = churnLines(cfg, 0, 24);
  int shed = 0;
  std::int64_t firstShedSeq = -1;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string response = daemon.handleLine(lines[i]);
    if (response.find("\"shed\":true") != std::string::npos) {
      ++shed;
      if (firstShedSeq < 0) firstShedSeq = static_cast<std::int64_t>(i);
      EXPECT_NE(response.find("retry_after_ms"), std::string::npos);
    }
  }
  ASSERT_GT(shed, 0);
  const Daemon::Stats stBefore = daemon.stats();
  EXPECT_EQ(stBefore.shed, shed);
  EXPECT_GT(stBefore.backpressured, 0);
  EXPECT_LE(stBefore.queueDepth, o.maxQueue);

  // Shedding never burned the seq: after draining, the shed seq retries.
  daemon.flush();
  const std::string retry = daemon.handleLine(
      lines[static_cast<std::size_t>(firstShedSeq)]);
  EXPECT_EQ(retry.rfind("{\"ok\":true", 0), 0u) << retry;
  daemon.flush();
  const Daemon::Stats st = daemon.stats();
  EXPECT_GE(st.totals.overloadBatches, 1);  // whole-queue drains engaged
  EXPECT_EQ(st.totals.enqueued, st.totals.committed + st.totals.failed);
  EXPECT_TRUE(composedOf(daemon, scenario).verified);
}

TEST(Admission, StatsWindowStaysBounded) {
  io::Scenario scenario;
  ChurnConfig cfg = smallChurn();
  churnScenario(cfg, scenario);
  DaemonOptions o;
  o.shards = 1;
  Daemon daemon(scenario, o);
  const std::vector<std::string> lines = churnLines(cfg, 0, 50);
  for (const std::string& line : lines) daemon.handleLine(line);
  daemon.flush();
  const Daemon::Stats st = daemon.stats();
  EXPECT_LE(st.latencySamples, st.totals.committed);
  EXPECT_LE(st.latencySamples, 1 << 16);  // the documented ring bound
  EXPECT_EQ(st.totals.enqueued, st.totals.committed + st.totals.failed);
}

// ---- recovery end-to-end over real churn ----------------------------------

TEST(Recovery, CleanShutdownRecoversAndContinues) {
  io::Scenario scenario;
  ChurnConfig cfg = smallChurn();
  cfg.events = 32;
  churnScenario(cfg, scenario);
  const std::vector<std::string> lines = churnLines(cfg, 0, 64);

  util::FaultFs fs;
  RunResult straight;
  {
    // Uninterrupted reference over all 64 events.
    util::FaultFs ref;
    Daemon daemon(scenario, journalOpts(&ref, FsyncMode::kAlways));
    feedChunked(daemon, lines, &ref, nullptr);
    straight = composedOf(daemon, scenario);
  }
  {
    // First half (chunked exactly like the reference), clean shutdown.
    const std::vector<std::string> half(lines.begin(), lines.begin() + 32);
    Daemon daemon(scenario, journalOpts(&fs, FsyncMode::kAlways));
    feedChunked(daemon, half, &fs, nullptr);
    daemon.handleLine(R"({"op":"shutdown"})");
    EXPECT_TRUE(daemon.stopped());
  }
  // Second process: recovers, finishes the stream, matches the reference.
  Daemon daemon(scenario, journalOpts(&fs, FsyncMode::kAlways));
  EXPECT_TRUE(daemon.recovered());
  feedChunked(daemon, lines, &fs, nullptr);
  const RunResult got = composedOf(daemon, scenario);
  EXPECT_TRUE(got.verified);
  EXPECT_EQ(got.globalIds, straight.globalIds);
  EXPECT_TRUE(got.placement == straight.placement);
}

}  // namespace
}  // namespace ruleplace::serve
