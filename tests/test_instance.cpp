// Tests for the experiment-instance builder and cross-topology end-to-end
// placements (leaf-spine fabric alongside the Fat-Tree benchmarks).

#include <gtest/gtest.h>

#include "core/greedy.h"
#include "core/instance.h"
#include "core/placer.h"
#include "core/verify.h"
#include "topo/fattree.h"

namespace ruleplace::core {
namespace {

TEST(Instance, BuildsConsistentProblem) {
  InstanceConfig cfg;
  cfg.fatTreeK = 4;
  cfg.capacity = 50;
  cfg.ingressCount = 6;
  cfg.totalPaths = 24;
  cfg.rulesPerPolicy = 9;
  cfg.seed = 5;
  Instance inst(cfg);
  EXPECT_EQ(inst.graph().switchCount(), 20);
  PlacementProblem p = inst.problem();
  EXPECT_NO_THROW(p.validate());
  EXPECT_EQ(p.policyCount(), 6);
  EXPECT_EQ(p.totalPaths(), 24);
  for (const auto& q : p.policies) {
    EXPECT_EQ(q.size(), 9u);
  }
  // Distinct ingress ports.
  std::set<topo::PortId> ports;
  for (const auto& r : p.routing) ports.insert(r.ingress);
  EXPECT_EQ(ports.size(), 6u);
}

TEST(Instance, DeterministicForSeed) {
  InstanceConfig cfg;
  cfg.fatTreeK = 4;
  cfg.ingressCount = 4;
  cfg.totalPaths = 12;
  cfg.rulesPerPolicy = 8;
  cfg.seed = 77;
  Instance a(cfg);
  Instance b(cfg);
  PlacementProblem pa = a.problem();
  PlacementProblem pb = b.problem();
  ASSERT_EQ(pa.routing.size(), pb.routing.size());
  for (std::size_t i = 0; i < pa.routing.size(); ++i) {
    EXPECT_EQ(pa.routing[i].ingress, pb.routing[i].ingress);
    ASSERT_EQ(pa.routing[i].paths.size(), pb.routing[i].paths.size());
    for (std::size_t j = 0; j < pa.routing[i].paths.size(); ++j) {
      EXPECT_EQ(pa.routing[i].paths[j].switches,
                pb.routing[i].paths[j].switches);
    }
    EXPECT_TRUE(pa.policies[i].semanticallyEquals(pb.policies[i]));
  }
}

TEST(Instance, SlicedTrafficAssignsDescriptors) {
  InstanceConfig cfg;
  cfg.fatTreeK = 4;
  cfg.ingressCount = 4;
  cfg.totalPaths = 12;
  cfg.rulesPerPolicy = 8;
  cfg.slicedTraffic = true;
  cfg.seed = 3;
  Instance inst(cfg);
  int overlapping = 0;
  for (const auto& r : inst.routing()) {
    for (const auto& path : r.paths) {
      ASSERT_TRUE(path.traffic.has_value());
    }
  }
  // With the dst-pool generator, a healthy fraction of rules relate to
  // real egress subnets (slicing keeps them).
  for (std::size_t i = 0; i < inst.policies().size(); ++i) {
    for (const auto& rule : inst.policies()[i].rules()) {
      for (const auto& path : inst.routing()[i].paths) {
        if (rule.matchField.overlaps(*path.traffic)) {
          ++overlapping;
          break;
        }
      }
    }
  }
  EXPECT_GT(overlapping, 0);
}

TEST(Instance, RejectsBadConfig) {
  InstanceConfig cfg;
  cfg.fatTreeK = 4;
  cfg.ingressCount = 0;
  EXPECT_THROW(Instance inst(cfg), std::invalid_argument);
  cfg.ingressCount = 100;  // > 16 host ports at k=4
  EXPECT_THROW(Instance inst2(cfg), std::invalid_argument);
}

// End-to-end on a *leaf-spine* fabric (the benchmarks use Fat-Tree; the
// library is topology-agnostic).
class LeafSpineEndToEnd : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LeafSpineEndToEnd, PlaceAndVerify) {
  topo::Graph g;
  topo::buildLeafSpine(g, 4, 2, 3, 30);
  util::Rng rng(GetParam());
  std::vector<topo::PortId> ingresses{0, 3, 6, 9};
  auto routing = topo::generatePaths(g, ingresses, 16, rng);
  classbench::GeneratorConfig gen;
  gen.rulesPerPolicy = 10;
  classbench::PolicyGenerator pg(gen, rng.next());
  PlacementProblem p;
  p.graph = &g;
  p.routing = routing;
  for (std::size_t i = 0; i < ingresses.size(); ++i) {
    p.policies.push_back(pg.generate());
  }
  PlaceOptions opts;
  opts.budget = solver::Budget::seconds(20);
  PlaceOutcome out = place(p, opts);
  ASSERT_TRUE(out.hasSolution());
  auto v = verifyPlacement(out.solvedProblem, out.placement);
  EXPECT_TRUE(v.ok) << v.summary();
  // Global sharing beats path-wise duplication whenever both succeed.
  GreedyOutcome pw = pathwisePlace(p);
  if (pw.feasible) {
    EXPECT_LE(out.objective, pw.totalRules);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LeafSpineEndToEnd,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace ruleplace::core
