// Tests for port-range -> TCAM prefix expansion.

#include <gtest/gtest.h>

#include "acl/range_rules.h"
#include "match/ranges.h"
#include "util/rng.h"

namespace ruleplace::match {
namespace {

// Does a PortMatch (prefix-shaped) contain port p?
bool matchesPort(const PortMatch& m, std::uint16_t p) {
  if (m.careBits == 0) return true;
  std::uint16_t mask =
      static_cast<std::uint16_t>(0xffffu << (16 - m.careBits));
  return (p & mask) == (m.value & mask);
}

TEST(ExpandRange, FullRangeIsOneWildcard) {
  auto cover = expandRange({0, 65535});
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].careBits, 0);
}

TEST(ExpandRange, ExactPortIsOneEntry) {
  auto cover = expandRange({443, 443});
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].careBits, 16);
  EXPECT_EQ(cover[0].value, 443);
}

TEST(ExpandRange, ClassicEphemeralRange) {
  // 1024-65535 is the canonical example: 6 prefixes
  // (1024-2047, 2048-4095, ..., 32768-65535).
  auto cover = expandRange({1024, 65535});
  EXPECT_EQ(cover.size(), 6u);
}

TEST(ExpandRange, EmptyRange) {
  EXPECT_TRUE(expandRange({10, 5}).empty());
}

TEST(ExpandRange, WorstCaseIsBounded) {
  // [1, 65534] is the classic worst case: 30 prefixes (2w - 2 for w=16).
  auto cover = expandRange({1, 65534});
  EXPECT_EQ(cover.size(), 30u);
}

class ExpandRangeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExpandRangeProperty, CoverIsExactAndDisjoint) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    std::uint16_t a = static_cast<std::uint16_t>(rng.below(65536));
    std::uint16_t b = static_cast<std::uint16_t>(rng.below(65536));
    PortRange range{std::min(a, b), std::max(a, b)};
    auto cover = expandRange(range);
    EXPECT_LE(cover.size(), 30u);
    // Membership agrees on sampled ports (and range endpoints).
    for (int s = 0; s < 40; ++s) {
      std::uint16_t p = (s == 0)   ? range.lo
                        : (s == 1) ? range.hi
                                   : static_cast<std::uint16_t>(rng.below(65536));
      int hits = 0;
      for (const auto& m : cover) hits += matchesPort(m, p) ? 1 : 0;
      EXPECT_EQ(hits, range.contains(p) ? 1 : 0)
          << "port " << p << " range [" << range.lo << "," << range.hi << "]";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExpandRangeProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(ExpandRule, CrossProductAndCost) {
  RangeRule rule;
  rule.src = {0x0a000000u, 8};
  rule.srcPort = {1024, 65535};  // 6 prefixes
  rule.dstPort = {80, 81};       // 1 prefix (80-81 aligned)
  EXPECT_EQ(expansionCost(rule), 6u);
  auto cubes = expandRule(rule);
  ASSERT_EQ(cubes.size(), 6u);
  // Pieces are pairwise disjoint.
  for (std::size_t i = 0; i < cubes.size(); ++i) {
    for (std::size_t j = i + 1; j < cubes.size(); ++j) {
      EXPECT_FALSE(cubes[i].overlaps(cubes[j]));
    }
  }
  // A header inside the rule hits exactly one piece.
  Tuple5 probe;
  probe.src = {0x0a010203u, 32};
  probe.srcPort = PortMatch::exact(5000);
  probe.dstPort = PortMatch::exact(80);
  probe.proto = ProtoMatch::tcp();
  int hits = 0;
  for (const auto& c : cubes) {
    if (c.overlaps(probe.toTernary())) ++hits;
  }
  EXPECT_EQ(hits, 1);
}

TEST(ExpandRule, UnalignedDstRange) {
  RangeRule rule;
  rule.dstPort = {80, 90};  // 80-87, 88-89, 90 -> 3 prefixes
  EXPECT_EQ(expansionCost(rule), 3u);
}

}  // namespace
}  // namespace ruleplace::match

namespace ruleplace::acl {
namespace {

TEST(RangeRules, AppendExpandsIntoPolicy) {
  Policy q;
  match::RangeRule blk;
  blk.src = {0xac100000u, 12};   // 172.16/12
  blk.srcPort = {1024, 65535};   // 6 prefixes
  auto ids = appendRangeRule(q, blk, Action::kDrop);
  EXPECT_EQ(ids.size(), 6u);
  EXPECT_EQ(q.size(), 6u);
  // Semantics: a packet in the range is dropped, below it is permitted.
  match::Tuple5 in;
  in.src = {0xac100001u, 32};
  in.srcPort = match::PortMatch::exact(2000);
  match::Tuple5 below = in;
  below.srcPort = match::PortMatch::exact(22);
  // Concretize wildcards for evaluation.
  auto concretize = [](match::Ternary t) {
    for (int i = 0; i < t.width(); ++i) {
      if (t.bit(i) < 0) t.setBit(i, 0);
    }
    return t;
  };
  EXPECT_EQ(q.evaluate(concretize(in.toTernary())), Action::kDrop);
  EXPECT_EQ(q.evaluate(concretize(below.toTernary())), Action::kPermit);
}

}  // namespace
}  // namespace ruleplace::acl
