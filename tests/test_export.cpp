// Tests for the SMT-LIB 2 / CPLEX LP model exporters and the k-shortest
// path routing extension.

#include <gtest/gtest.h>

#include <set>

#include "core/encoder.h"
#include "io/export_model.h"
#include "topo/fattree.h"
#include "topo/routing.h"

namespace ruleplace::io {
namespace {

solver::Model smallModel() {
  solver::Model m;
  solver::ModelVar a = m.addBinary("a");
  solver::ModelVar b = m.addBinary("b");
  solver::ModelVar c = m.addBinary("c");
  solver::LinearExpr cover;
  cover.add(1, a).add(1, b);
  m.addConstraint(cover, solver::Cmp::kGe, 1, "cover");
  solver::LinearExpr cap;
  cap.add(1, a).add(2, b).add(-1, c);
  m.addConstraint(cap, solver::Cmp::kLe, 2, "cap:with-colon");
  solver::LinearExpr eq;
  eq.add(1, c);
  m.addConstraint(eq, solver::Cmp::kEq, 1);
  solver::LinearExpr obj;
  obj.add(1, a).add(1, b).add(-2, c);
  m.setObjective(obj);
  return m;
}

TEST(SmtExport, ContainsDeclarationsAndAssertions) {
  std::string smt = toSmtLib2(smallModel());
  EXPECT_NE(smt.find("(set-logic QF_LIA)"), std::string::npos);
  EXPECT_NE(smt.find("(declare-const a Int)"), std::string::npos);
  EXPECT_NE(smt.find("(assert (<= a 1))"), std::string::npos);
  EXPECT_NE(smt.find("(assert (>= (+ a b 0) 1))"), std::string::npos);
  EXPECT_NE(smt.find("(minimize"), std::string::npos);
  EXPECT_NE(smt.find("(check-sat)"), std::string::npos);
  // Negative coefficients render as (* (- 2) c), never bare "-2".
  EXPECT_NE(smt.find("(* (- 2) c)"), std::string::npos);
  // Balanced parentheses.
  int depth = 0;
  for (char ch : smt) {
    if (ch == '(') ++depth;
    if (ch == ')') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(SmtExport, NoObjectiveMeansNoMinimize) {
  solver::Model m;
  m.addBinary("x");
  EXPECT_EQ(toSmtLib2(m).find("(minimize"), std::string::npos);
}

TEST(LpExport, SectionsAndSanitizedNames) {
  std::string lp = toCplexLp(smallModel());
  EXPECT_NE(lp.find("Minimize"), std::string::npos);
  EXPECT_NE(lp.find("Subject To"), std::string::npos);
  EXPECT_NE(lp.find("Binary"), std::string::npos);
  EXPECT_NE(lp.find("End"), std::string::npos);
  EXPECT_NE(lp.find(" cover: a + b >= 1"), std::string::npos);
  // ':' in the user name is sanitized to '_'.
  EXPECT_NE(lp.find("cap_with_colon:"), std::string::npos);
  EXPECT_EQ(lp.find("cap:with-colon:"), std::string::npos);
  EXPECT_NE(lp.find("- 2 c"), std::string::npos);  // objective: a + b - 2 c
}

TEST(LpExport, EncoderModelExports) {
  // A real encoder model exports without blowing up and carries the
  // capacity constraint names.
  topo::Graph g;
  topo::buildLinear(g, 3, 4);
  topo::ShortestPathRouter router(g);
  util::Rng rng(1);
  topo::Path path = router.route(0, 1, rng);
  acl::Policy q;
  q.addRule(match::Ternary::fromString("1*"), acl::Action::kPermit);
  q.addRule(match::Ternary::fromString("**"), acl::Action::kDrop);
  core::PlacementProblem p;
  p.graph = &g;
  p.routing = {{0, {path}}};
  p.policies = {q};
  core::Encoder enc(p, {});
  std::string lp = toCplexLp(enc.model());
  EXPECT_NE(lp.find("cap_s0"), std::string::npos);
  std::string smt = toSmtLib2(enc.model());
  EXPECT_NE(smt.find("v_0_1_0"), std::string::npos);
}

}  // namespace
}  // namespace ruleplace::io

namespace ruleplace::topo {
namespace {

TEST(KShortest, DiamondHasTwoShortest) {
  Graph g;
  SwitchId a = g.addSwitch(1);
  SwitchId b = g.addSwitch(1);
  SwitchId c = g.addSwitch(1);
  SwitchId d = g.addSwitch(1);
  g.addLink(a, b);
  g.addLink(a, c);
  g.addLink(b, d);
  g.addLink(c, d);
  PortId in = g.addEntryPort(a);
  PortId out = g.addEntryPort(d);
  ShortestPathRouter router(g);
  auto paths = router.kShortest(in, out, 5);
  // Exactly two simple paths exist: a-b-d and a-c-d.
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].hops(), 3);
  EXPECT_EQ(paths[1].hops(), 3);
  EXPECT_NE(paths[0].switches, paths[1].switches);
}

TEST(KShortest, LengthsAreNonDecreasingAndPathsSimple) {
  Graph g;
  buildFatTree(g, 4, 10);
  ShortestPathRouter router(g);
  auto paths = router.kShortest(0, g.entryPortCount() - 1, 8);
  ASSERT_GE(paths.size(), 4u);  // k=4 fat-tree: 4 equal-cost cross-pod paths
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i].hops(), paths[i - 1].hops());
  }
  std::set<std::vector<SwitchId>> distinct;
  for (const auto& p : paths) {
    EXPECT_EQ(p.switches.front(), g.entryPort(0).attachedSwitch);
    EXPECT_EQ(p.switches.back(),
              g.entryPort(g.entryPortCount() - 1).attachedSwitch);
    std::set<SwitchId> nodes(p.switches.begin(), p.switches.end());
    EXPECT_EQ(nodes.size(), p.switches.size()) << "path not simple";
    distinct.insert(p.switches);
    for (std::size_t h = 0; h + 1 < p.switches.size(); ++h) {
      EXPECT_TRUE(g.hasLink(p.switches[h], p.switches[h + 1]));
    }
  }
  EXPECT_EQ(distinct.size(), paths.size());
  // The 4 shortest are the 5-hop ECMP paths.
  EXPECT_EQ(paths[0].hops(), 5);
  EXPECT_EQ(paths[3].hops(), 5);
}

TEST(KShortest, DisconnectedReturnsEmpty) {
  Graph g;
  SwitchId a = g.addSwitch(1);
  SwitchId b = g.addSwitch(1);
  PortId in = g.addEntryPort(a);
  PortId out = g.addEntryPort(b);
  ShortestPathRouter router(g);
  EXPECT_TRUE(router.kShortest(in, out, 3).empty());
}

TEST(Graph, RemoveLinkModelsFailure) {
  Graph g;
  SwitchId a = g.addSwitch(1);
  SwitchId b = g.addSwitch(1);
  g.addLink(a, b);
  EXPECT_TRUE(g.removeLink(a, b));
  EXPECT_FALSE(g.hasLink(a, b));
  EXPECT_FALSE(g.removeLink(a, b));
  EXPECT_EQ(g.linkCount(), 0);
}

TEST(Graph, RerouteAroundFailedLink) {
  // Diamond; kill one arm; routing still works via the other.
  Graph g;
  SwitchId a = g.addSwitch(1);
  SwitchId b = g.addSwitch(1);
  SwitchId c = g.addSwitch(1);
  SwitchId d = g.addSwitch(1);
  g.addLink(a, b);
  g.addLink(a, c);
  g.addLink(b, d);
  g.addLink(c, d);
  PortId in = g.addEntryPort(a);
  PortId out = g.addEntryPort(d);
  g.removeLink(a, b);
  ShortestPathRouter router(g);
  util::Rng rng(1);
  Path p = router.route(in, out, rng);
  EXPECT_EQ(p.switches, (std::vector<SwitchId>{a, c, d}));
}

}  // namespace
}  // namespace ruleplace::topo
