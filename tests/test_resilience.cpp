// Resilience tests: deadline/cancellation plumbing, per-component failure
// isolation, the graceful-degradation ladder, partial results, incremental
// escalation, and infeasibility explanations (docs/robustness.md).
//
// Wall-clock assertions are confined to one test (WallDeadline*) and use
// generous sanitizer-safe bounds; everything else runs on conflict budgets
// or already-expired deadlines so verdicts are machine-independent.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/explain.h"
#include "core/greedy.h"
#include "core/incremental.h"
#include "core/instance.h"
#include "core/placer.h"
#include "core/verify.h"
#include "depgraph/merging.h"
#include "match/ternary.h"
#include "solver/bruteforce.h"
#include "util/deadline.h"
#include "util/thread_pool.h"

namespace ruleplace::core {
namespace {

using acl::Action;
using match::Ternary;

Ternary T(const char* s) { return Ternary::fromString(s); }

// ---------------------------------------------------------------------------
// ThreadPool exception contract: the first exception per wave (lowest
// submission ordinal) is rethrown at wait(); workers never die.

TEST(ThreadPoolExceptions, ThrowingTaskRethrownAtWait) {
  util::ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  EXPECT_EQ(ran.load(), 8);  // siblings still ran to completion
}

TEST(ThreadPoolExceptions, LowestSubmissionOrdinalWins) {
  util::ThreadPool pool(4);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 64; ++i) {
      pool.submit([i] { throw std::runtime_error(std::to_string(i)); });
    }
    try {
      pool.wait();
      FAIL() << "wait() must rethrow";
    } catch (const std::runtime_error& e) {
      // Task 0 always throws, and 0 is the lowest possible ordinal, so the
      // winner is deterministic no matter how the 4 workers interleave.
      EXPECT_STREQ(e.what(), "0") << "round " << round;
    }
  }
}

TEST(ThreadPoolExceptions, PoolStaysUsableAfterException) {
  util::ThreadPool pool(2);
  pool.submit([] { throw std::logic_error("first wave"); });
  EXPECT_THROW(pool.wait(), std::logic_error);
  std::atomic<int> counter{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();  // second wave is clean: no stale exception resurfaces
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPoolExceptions, DestructorSwallowsUncollectedException) {
  // Destroying a pool whose last wave threw (wait() never called) must not
  // terminate the process.
  util::ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("never collected"); });
}

// ---------------------------------------------------------------------------
// Deadline and Budget plumbing

TEST(Deadline, ExpiryAndCancellation) {
  util::Deadline never;
  EXPECT_FALSE(never.expired());
  EXPECT_FALSE(never.hasWallDeadline());

  util::Deadline past = util::Deadline::in(0.0);
  EXPECT_TRUE(past.expired());
  EXPECT_EQ(past.remainingSeconds(), 0.0);
  EXPECT_THROW(past.check("unit test"), util::DeadlineExceeded);

  util::CancelToken token = util::CancelToken::create();
  util::Deadline cancellable = util::Deadline::in(3600.0).withToken(token);
  EXPECT_FALSE(cancellable.expired());
  token.requestCancel();
  EXPECT_TRUE(cancellable.expired());
  EXPECT_EQ(cancellable.remainingSeconds(), 0.0);
}

TEST(Budget, MinusClampsAtZeroAndKeepsUnlimited) {
  solver::Budget b = solver::Budget::conflicts(100);
  solver::Budget spent = b.minus(150, 0.5);
  EXPECT_EQ(spent.maxConflicts, 0);
  EXPECT_TRUE(spent.conflictsExhausted());
  EXPECT_TRUE(spent.unlimitedTime());  // unlimited stays unlimited

  solver::Budget t = solver::Budget::seconds(2.0).minus(0, 0.5);
  EXPECT_DOUBLE_EQ(t.maxSeconds, 1.5);
  EXPECT_TRUE(t.unlimitedConflicts());
}

TEST(Budget, SlicingPreservesTheSharedDeadline) {
  util::CancelToken token = util::CancelToken::create();
  solver::Budget b = solver::Budget::seconds(8.0);
  b.deadline = util::Deadline::in(3600.0).withToken(token);
  solver::Budget slice = b.sliced(4);
  EXPECT_DOUBLE_EQ(slice.maxSeconds, 2.0);  // relative limit divided
  EXPECT_TRUE(slice.deadline.hasWallDeadline());  // absolute cap shared
  EXPECT_FALSE(slice.exhausted());
  token.requestCancel();
  EXPECT_TRUE(slice.exhausted());  // cancellation reaches every slice
}

// ---------------------------------------------------------------------------
// Deadline-aware auxiliary passes (brute force, greedy, merge analysis)

// The paper's Fig. 3 network (same shape as test_core.cpp).
struct Fig3 {
  topo::Graph graph;
  topo::PortId l1, l2, l3;
  topo::SwitchId s1, s2, s3, s4, s5;

  Fig3(int c1, int c2, int c3, int c4, int c5) {
    s1 = graph.addSwitch(c1);
    s2 = graph.addSwitch(c2);
    s3 = graph.addSwitch(c3);
    s4 = graph.addSwitch(c4);
    s5 = graph.addSwitch(c5);
    graph.addLink(s1, s2);
    graph.addLink(s2, s3);
    graph.addLink(s2, s4);
    graph.addLink(s4, s5);
    l1 = graph.addEntryPort(s1);
    l2 = graph.addEntryPort(s3);
    l3 = graph.addEntryPort(s5);
  }

  PlacementProblem problem(acl::Policy q) const {
    topo::Path pathA{l1, l2, {s1, s2, s3}, std::nullopt};
    topo::Path pathB{l1, l3, {s1, s2, s4, s5}, std::nullopt};
    PlacementProblem p;
    p.graph = &graph;
    p.routing = {{l1, {pathA, pathB}}};
    p.policies = {std::move(q)};
    return p;
  }
};

acl::Policy fig3Policy() {
  acl::Policy q;
  q.addRule(T("111*"), Action::kPermit);  // shields the drop below
  q.addRule(T("00**"), Action::kPermit);
  q.addRule(T("11**"), Action::kDrop);
  return q;
}

TEST(DeadlineAwarePasses, BruteForceReportsUnknownOnExpiry) {
  Fig3 net(0, 1, 2, 0, 2);
  PlacementProblem p = net.problem(fig3Policy());
  Encoder enc(p, {});
  solver::OptResult r =
      solver::bruteForceSolve(enc.model(), 24, util::Deadline::in(0.0));
  EXPECT_EQ(r.status, solver::OptStatus::kUnknown);
}

TEST(DeadlineAwarePasses, GreedyReportsExpiry) {
  Fig3 net(0, 1, 2, 0, 2);
  PlacementProblem p = net.problem(fig3Policy());
  GreedyOutcome g = greedyPlace(p, false, util::Deadline::in(0.0));
  EXPECT_FALSE(g.feasible);
  EXPECT_TRUE(g.deadlineExpired);
  GreedyOutcome ok = greedyPlace(p);  // no deadline: must succeed
  EXPECT_TRUE(ok.feasible);
}

TEST(DeadlineAwarePasses, MergeAnalysisThrowsOnExpiry) {
  std::vector<acl::Policy> policies = {fig3Policy(), fig3Policy()};
  EXPECT_THROW(depgraph::analyzeMergeable(policies, util::Deadline::in(0.0)),
               util::DeadlineExceeded);
  std::vector<acl::Policy> again = {fig3Policy(), fig3Policy()};
  EXPECT_NO_THROW(depgraph::analyzeMergeable(again));
}

// ---------------------------------------------------------------------------
// Failure isolation and UNSAT end-to-end

TEST(FailureIsolation, InfeasibleRunRecordsFailureInfo) {
  Fig3 net(0, 0, 1, 0, 2);  // path A cannot host drop + shield anywhere
  PlaceOutcome out = place(net.problem(fig3Policy()));
  EXPECT_EQ(out.status, solver::OptStatus::kInfeasible);
  EXPECT_FALSE(out.hasAnyPlacement());
  EXPECT_EQ(out.failedComponents, 1);
  ASSERT_EQ(out.componentStats.size(), 1u);
  ASSERT_TRUE(out.componentStats[0].failure.has_value());
  EXPECT_EQ(out.componentStats[0].failure->status,
            solver::OptStatus::kInfeasible);
  ASSERT_TRUE(out.failure.has_value());
  EXPECT_EQ(out.failure->status, solver::OptStatus::kInfeasible);
  EXPECT_EQ(out.componentStats[0].policyIds, std::vector<int>{0});
}

TEST(FailureIsolation, LadderNeverRescuesUnsat) {
  Fig3 net(0, 0, 1, 0, 2);
  PlaceOptions opts;
  opts.resilience.ladder = true;
  opts.resilience.partialResults = true;
  PlaceOutcome out = place(net.problem(fig3Policy()), opts);
  // UNSAT is a definitive verdict: no rung may produce a "placement".
  EXPECT_EQ(out.status, solver::OptStatus::kInfeasible);
  EXPECT_FALSE(out.hasAnyPlacement());
  EXPECT_FALSE(out.degraded);
  EXPECT_EQ(out.rung, PlaceRung::kOptimal);
}

// ---------------------------------------------------------------------------
// Infeasibility explanation, validated against brute force

// Satisfiability of Fig. 3 with the switches in `keptMask` at their
// original capacities and every other switch relaxed — decided by full
// enumeration of the encoded model, independent of the CDCL solver.
bool bruteInfeasible(const Fig3& net, unsigned keptMask) {
  PlacementProblem p = net.problem(fig3Policy());
  std::vector<int> caps(5, 100);
  for (topo::SwitchId sw = 0; sw < 5; ++sw) {
    if (keptMask & (1u << sw)) caps[sw] = net.graph.sw(sw).capacity;
  }
  p.capacityOverride = std::move(caps);
  Encoder enc(p, {});
  return solver::bruteForceSolve(enc.model(), 24).status ==
         solver::OptStatus::kInfeasible;
}

TEST(ExplainInfeasible, MinimalSwitchSetMatchesBruteForce) {
  Fig3 net(0, 0, 1, 0, 2);
  PlacementProblem p = net.problem(fig3Policy());
  InfeasibilityExplanation ex = explainInfeasible(p);
  EXPECT_TRUE(ex.confirmedInfeasible);
  EXPECT_TRUE(ex.capacityDriven);
  EXPECT_TRUE(ex.minimal);
  ASSERT_FALSE(ex.switches.empty());
  EXPECT_GE(ex.solves, 2);

  unsigned coreMask = 0;
  for (topo::SwitchId sw : ex.switches) coreMask |= 1u << sw;
  // The reported set really is infeasible, and 1-minimal: dropping any
  // single member makes the instance satisfiable.
  EXPECT_TRUE(bruteInfeasible(net, coreMask));
  for (topo::SwitchId sw : ex.switches) {
    EXPECT_FALSE(bruteInfeasible(net, coreMask & ~(1u << sw)))
        << "switch " << sw << " is not load-bearing";
  }
  // Exhaustive cross-check over all 2^5 capacity subsets: a kept set is
  // infeasible exactly when it contains the whole core (path A's switches
  // are the only binding ones here, so the core is unique).
  for (unsigned mask = 0; mask < 32; ++mask) {
    EXPECT_EQ(bruteInfeasible(net, mask), (mask & coreMask) == coreMask)
        << "mask " << mask;
  }
}

TEST(ExplainInfeasible, FeasibleInstanceIsNotExplained) {
  Fig3 net(0, 1, 2, 0, 2);
  PlacementProblem p = net.problem(fig3Policy());
  InfeasibilityExplanation ex = explainInfeasible(p);
  EXPECT_FALSE(ex.confirmedInfeasible);
  EXPECT_TRUE(ex.switches.empty());
}

TEST(ExplainInfeasible, ExpiredDeadlineLeavesVerdictOpen) {
  Fig3 net(0, 0, 1, 0, 2);
  PlacementProblem p = net.problem(fig3Policy());
  solver::Budget budget = solver::Budget::unlimited();
  budget.deadline = util::Deadline::in(0.0);
  InfeasibilityExplanation ex = explainInfeasible(p, {}, budget);
  EXPECT_FALSE(ex.confirmedInfeasible);  // kUnknown is never reported UNSAT
}

// ---------------------------------------------------------------------------
// Degradation ladder: deterministic across thread counts, every rung
// verified

InstanceConfig ladderConfig(std::uint64_t seed) {
  InstanceConfig cfg;
  cfg.fatTreeK = 4;
  cfg.capacity = 14;
  cfg.ingressCount = 6;
  cfg.totalPaths = 18;
  cfg.rulesPerPolicy = 8;
  cfg.seed = seed;
  return cfg;
}

TEST(Ladder, ExpiredDeadlineDegradesDeterministically) {
  Instance inst(ladderConfig(3));
  PlaceOptions opts;
  // An already-expired deadline fails the exact solve (and the sat-only
  // rung) of every component identically on every machine — unlike a wall
  // deadline mid-flight, the verdict cannot race the scheduler.
  opts.budget.deadline = util::Deadline::in(0.0);
  opts.resilience.ladder = true;
  opts.resilience.partialResults = true;

  opts.threads = 1;
  PlaceOutcome ref = place(inst.problem(), opts);
  ASSERT_TRUE(ref.hasAnyPlacement());
  EXPECT_TRUE(ref.degraded);
  EXPECT_EQ(ref.rung, PlaceRung::kGreedy);
  for (const auto& c : ref.componentStats) {
    EXPECT_TRUE(c.failure.has_value());  // attribution survives the rescue
    EXPECT_EQ(c.rung, PlaceRung::kGreedy);
  }
  VerifyResult v = verifyPlacement(ref.solvedProblem, ref.placement);
  EXPECT_TRUE(v.ok) << v.summary();

  for (int threads : {2, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    PlaceOptions par = opts;
    par.threads = threads;
    PlaceOutcome got = place(inst.problem(), par);
    EXPECT_EQ(got.status, ref.status);
    EXPECT_EQ(got.rung, ref.rung);
    EXPECT_EQ(got.degraded, ref.degraded);
    EXPECT_EQ(got.partial, ref.partial);
    EXPECT_EQ(got.failedComponents, ref.failedComponents);
    ASSERT_EQ(got.componentStats.size(), ref.componentStats.size());
    for (std::size_t c = 0; c < ref.componentStats.size(); ++c) {
      EXPECT_EQ(got.componentStats[c].rung, ref.componentStats[c].rung);
      EXPECT_EQ(got.componentStats[c].status, ref.componentStats[c].status);
      EXPECT_EQ(got.componentStats[c].failure.has_value(),
                ref.componentStats[c].failure.has_value());
    }
    EXPECT_EQ(got.placement.toString(got.solvedProblem),
              ref.placement.toString(ref.solvedProblem));
  }
}

TEST(Ladder, OffByDefaultDeadlineExpiryStaysUnknown) {
  Instance inst(ladderConfig(3));
  PlaceOptions opts;
  opts.budget.deadline = util::Deadline::in(0.0);
  PlaceOutcome out = place(inst.problem(), opts);
  EXPECT_EQ(out.status, solver::OptStatus::kUnknown);
  EXPECT_FALSE(out.hasAnyPlacement());
  EXPECT_FALSE(out.degraded);
  EXPECT_GT(out.failedComponents, 0);
}

TEST(Ladder, ZeroConflictBudgetStillSolvesSearchFreeInstances) {
  // The Budget contract: maxConflicts == 0 means "no search", not "no
  // work" — an instance decided by propagation alone still succeeds, so
  // the ladder never fires for it.
  Instance inst(ladderConfig(3));
  PlaceOptions opts;
  opts.budget = solver::Budget::conflicts(0);
  opts.resilience.ladder = true;
  PlaceOutcome out = place(inst.problem(), opts);
  EXPECT_EQ(out.status, solver::OptStatus::kOptimal);
  EXPECT_FALSE(out.degraded);
  EXPECT_EQ(out.rung, PlaceRung::kOptimal);
}

// ---------------------------------------------------------------------------
// Partial results: failed components contribute nothing, the rest verify

TEST(PartialResults, SuccessfulComponentsSurviveAFailedSibling) {
  // Two decoupled single-switch ingresses; sA has no room at all, so its
  // component is UNSAT while sB's solves.
  topo::Graph graph;
  topo::SwitchId sA = graph.addSwitch(0);
  topo::SwitchId sB = graph.addSwitch(2);
  topo::PortId inA = graph.addEntryPort(sA);
  topo::PortId outA = graph.addEntryPort(sA);
  topo::PortId inB = graph.addEntryPort(sB);
  topo::PortId outB = graph.addEntryPort(sB);
  acl::Policy qA;
  qA.addRule(T("0***"), Action::kDrop);
  acl::Policy qB;
  qB.addRule(T("1***"), Action::kDrop);
  PlacementProblem p;
  p.graph = &graph;
  p.routing = {{inA, {topo::Path{inA, outA, {sA}, std::nullopt}}},
               {inB, {topo::Path{inB, outB, {sB}, std::nullopt}}}};
  p.policies = {qA, qB};

  PlaceOptions opts;
  opts.resilience.partialResults = true;
  PlaceOutcome out = place(p, opts);
  EXPECT_EQ(out.status, solver::OptStatus::kInfeasible);
  EXPECT_FALSE(out.hasSolution());
  ASSERT_TRUE(out.partial);
  EXPECT_TRUE(out.hasAnyPlacement());
  EXPECT_EQ(out.failedComponents, 1);
  ASSERT_EQ(out.componentStats.size(), 2u);
  EXPECT_EQ(out.componentStats[0].policyIds, std::vector<int>{0});
  EXPECT_EQ(out.componentStats[1].policyIds, std::vector<int>{1});
  EXPECT_EQ(out.componentStats[0].status, solver::OptStatus::kInfeasible);
  EXPECT_EQ(out.componentStats[1].status, solver::OptStatus::kOptimal);

  // The failed component's policy has no entries anywhere.
  EXPECT_EQ(out.placement.totalInstalledRules(), 1);
  EXPECT_EQ(out.placement.usedCapacity(sA), 0);
  EXPECT_EQ(out.placement.usedCapacity(sB), 1);
  // ...and the successful subset verifies exactly.
  std::vector<int> okPolicies{1};
  VerifyResult v =
      verifyPlacement(out.solvedProblem, out.placement, true, &okPolicies);
  EXPECT_TRUE(v.ok) << v.summary();
  // Without the subset filter the partial placement must NOT verify (qA's
  // drop is genuinely missing) — the filter is load-bearing.
  EXPECT_FALSE(verifyPlacement(out.solvedProblem, out.placement).ok);
}

TEST(PartialResults, OffByDefault) {
  Fig3 net(0, 0, 1, 0, 2);
  PlaceOutcome out = place(net.problem(fig3Policy()));
  EXPECT_FALSE(out.partial);
  EXPECT_FALSE(out.hasAnyPlacement());
}

// ---------------------------------------------------------------------------
// Incremental escalation: restricted-infeasible -> full re-solve

struct TwoSwitch {
  topo::Graph graph;
  topo::PortId l1, l2, l3, l4;
  topo::SwitchId s1, s2;

  TwoSwitch() {
    s1 = graph.addSwitch(2);
    s2 = graph.addSwitch(2);
    graph.addLink(s1, s2);
    l1 = graph.addEntryPort(s1);
    l2 = graph.addEntryPort(s2);
    l3 = graph.addEntryPort(s1);
    l4 = graph.addEntryPort(s1);
  }
};

TEST(IncrementalEscalation, RestrictedInfeasibleTriggersFullResolve) {
  TwoSwitch net;
  // Base: one policy (drop + shield, co-located pair) on the s1->s2 path.
  // The upstream-traffic objective pins it to s1, filling s1 completely.
  acl::Policy q1;
  q1.addRule(T("111*"), Action::kPermit);
  q1.addRule(T("11**"), Action::kDrop);
  PlacementProblem base;
  base.graph = &net.graph;
  base.routing = {{net.l1, {topo::Path{net.l1, net.l2, {net.s1, net.s2},
                                       std::nullopt}}}};
  base.policies = {q1};
  PlaceOptions opts;
  opts.encoder.objective = ObjectiveKind::kUpstreamTraffic;
  PlaceOutcome baseOut = place(base, opts);
  ASSERT_TRUE(baseOut.hasSolution());
  ASSERT_EQ(baseOut.placement.usedCapacity(net.s1), 2);

  // New policy: one drop whose path reaches only s1 — no spare capacity
  // there, so the restricted subproblem is UNSAT even though re-solving
  // the whole deployment (q1 moves to s2) is feasible.
  acl::Policy q2;
  q2.addRule(T("0***"), Action::kDrop);
  std::vector<topo::IngressPaths> newRouting = {
      {net.l3, {topo::Path{net.l3, net.l4, {net.s1}, std::nullopt}}}};
  std::vector<acl::Policy> newPolicies = {q2};

  PlaceOutcome restricted =
      installPolicies(base, baseOut.placement, newRouting, newPolicies, opts);
  EXPECT_EQ(restricted.status, solver::OptStatus::kInfeasible);
  EXPECT_FALSE(restricted.escalatedFullResolve);

  PlaceOptions escalate = opts;
  escalate.resilience.fullResolveOnInfeasible = true;
  PlaceOutcome full = installPolicies(base, baseOut.placement, newRouting,
                                      newPolicies, escalate);
  ASSERT_TRUE(full.hasSolution());
  EXPECT_TRUE(full.escalatedFullResolve);
  EXPECT_EQ(full.placement.usedCapacity(net.s1), 1);  // q2's drop
  EXPECT_EQ(full.placement.usedCapacity(net.s2), 2);  // q1 relocated
  VerifyResult v = verifyPlacement(full.solvedProblem, full.placement);
  EXPECT_TRUE(v.ok) << v.summary();
}

TEST(IncrementalEscalation, FeasibleRestrictedSolveDoesNotEscalate) {
  TwoSwitch net;
  acl::Policy q1;
  q1.addRule(T("11**"), Action::kDrop);
  PlacementProblem base;
  base.graph = &net.graph;
  base.routing = {{net.l1, {topo::Path{net.l1, net.l2, {net.s1, net.s2},
                                       std::nullopt}}}};
  base.policies = {q1};
  PlaceOptions opts;
  opts.resilience.fullResolveOnInfeasible = true;
  PlaceOutcome baseOut = place(base, opts);
  ASSERT_TRUE(baseOut.hasSolution());

  acl::Policy q2;
  q2.addRule(T("0***"), Action::kDrop);
  PlaceOutcome inc = installPolicies(
      base, baseOut.placement,
      {{net.l3, {topo::Path{net.l3, net.l4, {net.s1}, std::nullopt}}}}, {q2},
      opts);
  ASSERT_TRUE(inc.hasSolution());
  EXPECT_FALSE(inc.escalatedFullResolve);  // spare capacity sufficed
  VerifyResult v = verifyPlacement(inc.solvedProblem, inc.placement);
  EXPECT_TRUE(v.ok) << v.summary();
}

// ---------------------------------------------------------------------------
// Wall-clock deadline bounds the whole place() call (acceptance scenario:
// 16k-rule instance, 100 ms deadline, degraded-but-verified result)

TEST(WallDeadline, BoundsEndToEndPlacementOnLargeInstance) {
  // 1024 ingress policies x 16 rules = 16k rules, coupled into one
  // component by the shared edge/aggregation tables — the exact solve of
  // that component cannot finish inside 10 ms, so the ladder's greedy
  // floor must deliver.  (Measured in release: the streaming encoder gets
  // the whole exact pipeline down to ~0.1 s, so the deadline sits well
  // below that to keep the degradation premise valid.)
  InstanceConfig cfg;
  cfg.fatTreeK = 16;
  cfg.capacity = 200;
  cfg.ingressCount = 1024;
  cfg.totalPaths = 2048;
  cfg.rulesPerPolicy = 16;
  cfg.seed = 1;
  Instance inst(cfg);

  PlaceOptions opts;
  opts.budget = solver::Budget::seconds(0.01);
  opts.resilience.ladder = true;
  opts.resilience.partialResults = true;

  const auto start = std::chrono::steady_clock::now();
  PlaceOutcome out = place(inst.problem(), opts);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  // Release-build contract: within 2x the deadline plus the polynomial
  // greedy floor.  The asserted bound carries heavy slack so sanitizer and
  // loaded-CI builds stay green; the functional assertions below are the
  // strict part.
  EXPECT_LT(elapsed, 10.0) << "place() ignored the wall deadline";
  RecordProperty("elapsed_seconds", std::to_string(elapsed));

  ASSERT_TRUE(out.hasAnyPlacement());
  EXPECT_TRUE(out.degraded);  // a 16k-rule exact solve cannot finish in 100ms
  EXPECT_NE(out.rung, PlaceRung::kOptimal);
  bool anyAttribution = false;
  for (const auto& c : out.componentStats) {
    anyAttribution |= c.failure.has_value() || c.rung != PlaceRung::kOptimal;
  }
  EXPECT_TRUE(anyAttribution);

  // Exact verification of every 1024-policy drop set takes minutes (a few
  // wildcard-heavy policies fragment badly), so sample: full capacity
  // check (always global) + exact path semantics for every 64th policy.
  // The fuzzer runs the unsampled check continuously on small cases.
  std::vector<int> sampled;
  for (int pid = 0; pid < inst.problem().policyCount(); pid += 64) {
    sampled.push_back(pid);
  }
  VerifyResult v =
      verifyPlacement(out.solvedProblem, out.placement, true, &sampled);
  EXPECT_TRUE(v.ok) << v.summary();
}

TEST(WallDeadline, CancellationTokenStopsPlacement) {
  Instance inst(ladderConfig(5));
  PlaceOptions opts;
  opts.cancel = util::CancelToken::create();
  opts.cancel.requestCancel();  // cancelled before the call even starts
  opts.resilience.ladder = true;
  PlaceOutcome out = place(inst.problem(), opts);
  // Every component is skipped at its deadline check; the ladder's greedy
  // floor still produces a verified placement.
  ASSERT_TRUE(out.hasAnyPlacement());
  EXPECT_TRUE(out.degraded);
  EXPECT_EQ(out.rung, PlaceRung::kGreedy);
  VerifyResult v = verifyPlacement(out.solvedProblem, out.placement);
  EXPECT_TRUE(v.ok) << v.summary();
}

}  // namespace
}  // namespace ruleplace::core
