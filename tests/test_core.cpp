// Core placement tests: the encoder's constraint families, extraction,
// the semantic verifier, and the greedy baseline — including the paper's
// Fig. 3 worked example.

#include <gtest/gtest.h>

#include "core/encoder.h"
#include "core/greedy.h"
#include "core/placer.h"
#include "core/verify.h"
#include "match/ternary.h"

namespace ruleplace::core {
namespace {

using acl::Action;
using match::Ternary;

Ternary T(const char* s) { return Ternary::fromString(s); }

// The paper's Fig. 3 network: ingress l1 at s1; egresses l2 at s3 and l3 at
// s5; routes s1-s2-s3 and s1-s2-s4-s5.
struct Fig3 {
  topo::Graph graph;
  topo::PortId l1, l2, l3;
  topo::SwitchId s1, s2, s3, s4, s5;

  Fig3(int c1, int c2, int c3, int c4, int c5) {
    s1 = graph.addSwitch(c1);
    s2 = graph.addSwitch(c2);
    s3 = graph.addSwitch(c3);
    s4 = graph.addSwitch(c4);
    s5 = graph.addSwitch(c5);
    graph.addLink(s1, s2);
    graph.addLink(s2, s3);
    graph.addLink(s2, s4);
    graph.addLink(s4, s5);
    l1 = graph.addEntryPort(s1);
    l2 = graph.addEntryPort(s3);
    l3 = graph.addEntryPort(s5);
  }

  PlacementProblem problem(acl::Policy q) const {
    topo::Path pathA{l1, l2, {s1, s2, s3}, std::nullopt};
    topo::Path pathB{l1, l3, {s1, s2, s4, s5}, std::nullopt};
    PlacementProblem p;
    p.graph = &graph;
    p.routing = {{l1, {pathA, pathB}}};
    p.policies = {std::move(q)};
    return p;
  }
};

acl::Policy fig3Policy() {
  acl::Policy q;
  q.addRule(T("111*"), Action::kPermit);  // r11: shields r13
  q.addRule(T("00**"), Action::kPermit);  // r12: disjoint from r13
  q.addRule(T("11**"), Action::kDrop);    // r13: must cover both paths
  return q;
}

TEST(Encoder, Fig3ModelShape) {
  Fig3 net(0, 1, 2, 0, 2);
  PlacementProblem problem = net.problem(fig3Policy());
  Encoder enc(problem, {});
  const EncodingStats& st = enc.stats();
  // r13 gets a variable on all 5 switches; r11 accompanies it everywhere;
  // r12 shields nothing -> no variables at all.
  EXPECT_EQ(st.placementVars, 10);
  EXPECT_EQ(st.ruleDependencyConstraints, 5);
  EXPECT_EQ(st.pathDependencyConstraints, 2);
  EXPECT_EQ(st.capacityConstraints, 5);
  EXPECT_EQ(st.mergeVars, 0);
  const acl::Rule& r12 = problem.policies[0].rules()[1];
  EXPECT_EQ(enc.placementVar(0, r12.id, net.s1), -1);
}

TEST(Encoder, ValidatesProblem) {
  Fig3 net(1, 1, 1, 1, 1);
  PlacementProblem p = net.problem(fig3Policy());
  p.routing[0].paths[0].switches = {net.s1, net.s3};  // missing link
  EXPECT_THROW(Encoder(p, {}), std::invalid_argument);
  p = net.problem(fig3Policy());
  p.routing[0].paths[0].switches = {net.s2, net.s3};  // wrong start
  EXPECT_THROW(Encoder(p, {}), std::invalid_argument);
  p = net.problem(fig3Policy());
  p.policies.clear();  // size mismatch
  EXPECT_THROW(Encoder(p, {}), std::invalid_argument);
}

TEST(Placer, Fig3ReplicatesDropAcrossBothPaths) {
  // s2 too small for {r13, r11}; s1 empty: the drop must replicate on
  // s3 and s5, exactly the solution the paper walks through.
  Fig3 net(0, 1, 2, 0, 2);
  PlaceOutcome out = place(net.problem(fig3Policy()));
  ASSERT_EQ(out.status, solver::OptStatus::kOptimal);
  EXPECT_EQ(out.objective, 4);  // (r13 + shield r11) on both s3 and s5
  EXPECT_EQ(out.placement.usedCapacity(net.s3), 2);
  EXPECT_EQ(out.placement.usedCapacity(net.s5), 2);
  EXPECT_EQ(out.placement.usedCapacity(net.s2), 0);
  auto v = verifyPlacement(out.solvedProblem, out.placement);
  EXPECT_TRUE(v.ok) << v.summary();
}

TEST(Placer, PrefersSharedSwitchWhenItFits) {
  // With room on s2 (common to both paths) the optimum shares the rules.
  Fig3 net(0, 2, 2, 0, 2);
  PlaceOutcome out = place(net.problem(fig3Policy()));
  ASSERT_EQ(out.status, solver::OptStatus::kOptimal);
  EXPECT_EQ(out.objective, 2);  // r13 + r11 once, on s1 or s2
  auto v = verifyPlacement(out.solvedProblem, out.placement);
  EXPECT_TRUE(v.ok) << v.summary();
}

TEST(Placer, InfeasibleWhenNothingFits) {
  Fig3 net(0, 0, 1, 0, 2);  // s3 cannot hold drop+shield
  PlaceOutcome out = place(net.problem(fig3Policy()));
  EXPECT_EQ(out.status, solver::OptStatus::kInfeasible);
  EXPECT_FALSE(out.hasSolution());
}

TEST(Placer, ShieldOrderingInExtractedTable) {
  Fig3 net(0, 2, 2, 0, 2);
  PlaceOutcome out = place(net.problem(fig3Policy()));
  ASSERT_TRUE(out.hasSolution());
  for (int sw = 0; sw < net.graph.switchCount(); ++sw) {
    const auto& table = out.placement.table(sw);
    if (table.size() == 2) {
      EXPECT_EQ(table[0].action, Action::kPermit);
      EXPECT_EQ(table[1].action, Action::kDrop);
      EXPECT_GT(table[0].priority, table[1].priority);
    }
  }
}

TEST(Placer, SatisfiabilityOnlyModeIsFeasibleNotOptimal) {
  Fig3 net(5, 5, 5, 5, 5);
  PlaceOptions opts;
  opts.satisfiabilityOnly = true;
  PlaceOutcome out = place(net.problem(fig3Policy()), opts);
  ASSERT_TRUE(out.hasSolution());
  auto v = verifyPlacement(out.solvedProblem, out.placement);
  EXPECT_TRUE(v.ok) << v.summary();
}

TEST(Placer, UpstreamObjectivePushesDropsToIngress) {
  Fig3 net(5, 5, 5, 5, 5);  // plenty of room everywhere
  PlaceOptions opts;
  opts.encoder.objective = ObjectiveKind::kUpstreamTraffic;
  PlaceOutcome out = place(net.problem(fig3Policy()), opts);
  ASSERT_EQ(out.status, solver::OptStatus::kOptimal);
  // Cheapest spot is the ingress switch (loc 0 on both paths).
  EXPECT_EQ(out.placement.usedCapacity(net.s1), 2);
  EXPECT_EQ(out.placement.totalInstalledRules(), 2);
  auto v = verifyPlacement(out.solvedProblem, out.placement);
  EXPECT_TRUE(v.ok) << v.summary();
}

TEST(Placer, WeightedSwitchObjective) {
  Fig3 net(5, 5, 5, 5, 5);
  PlaceOptions opts;
  opts.encoder.objective = ObjectiveKind::kWeightedSwitch;
  opts.encoder.switchWeights = {9, 1, 9, 9, 9};  // s2 is cheap
  PlaceOutcome out = place(net.problem(fig3Policy()), opts);
  ASSERT_EQ(out.status, solver::OptStatus::kOptimal);
  EXPECT_EQ(out.placement.usedCapacity(1), 2);  // everything on s2
  auto v = verifyPlacement(out.solvedProblem, out.placement);
  EXPECT_TRUE(v.ok) << v.summary();
}

TEST(Placer, RedundancyRemovalShrinksPolicy) {
  acl::Policy q = fig3Policy();
  q.addRule(T("11**"), Action::kDrop);  // duplicate of r13, lower priority
  Fig3 net(0, 1, 2, 0, 2);
  PlaceOptions opts;
  opts.removeRedundancy = true;
  PlaceOutcome out = place(net.problem(std::move(q)), opts);
  ASSERT_EQ(out.status, solver::OptStatus::kOptimal);
  EXPECT_EQ(out.objective, 4);  // same as without the redundant rule
  // Complete removal drops the duplicate *and* the never-shielding permit
  // 00** (which only restates the default action).
  EXPECT_EQ(out.solvedProblem.policies[0].size(), 2u);
}

TEST(Verify, DetectsMissingDrop) {
  Fig3 net(5, 5, 5, 5, 5);
  PlacementProblem p = net.problem(fig3Policy());
  Placement empty(net.graph.switchCount());
  auto v = verifyPlacement(p, empty);
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.errors.size(), 2u);  // one per path
  EXPECT_NE(v.summary().find("should be dropped"), std::string::npos);
}

TEST(Verify, DetectsUnshieldedDrop) {
  Fig3 net(5, 5, 5, 5, 5);
  PlacementProblem p = net.problem(fig3Policy());
  const auto& rules = p.policies[0].rules();
  // Place the drop on both paths but omit its shielding permit.
  Placement bad = buildPlacement(
      p, {{0, rules[2].id, net.s3}, {0, rules[2].id, net.s5}});
  auto v = verifyPlacement(p, bad);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.summary().find("permits it"), std::string::npos);
}

TEST(Verify, DetectsCapacityOverflow) {
  Fig3 net(5, 5, 0, 5, 5);
  PlacementProblem p = net.problem(fig3Policy());
  const auto& rules = p.policies[0].rules();
  Placement bad = buildPlacement(p, {{0, rules[0].id, net.s3}});
  auto v = verifyPlacement(p, bad);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.summary().find("capacity"), std::string::npos);
}

TEST(Verify, AcceptsHandBuiltCorrectPlacement) {
  Fig3 net(5, 5, 5, 5, 5);
  PlacementProblem p = net.problem(fig3Policy());
  const auto& rules = p.policies[0].rules();
  Placement good = buildPlacement(
      p, {{0, rules[0].id, net.s1}, {0, rules[2].id, net.s1}});
  auto v = verifyPlacement(p, good);
  EXPECT_TRUE(v.ok) << v.summary();
}

TEST(Placement, ErasePolicyStripsTagsAndEntries) {
  Fig3 net(5, 5, 5, 5, 5);
  PlacementProblem p = net.problem(fig3Policy());
  const auto& rules = p.policies[0].rules();
  Placement pl = buildPlacement(p, {{0, rules[2].id, net.s1}});
  EXPECT_EQ(pl.totalInstalledRules(), 1);
  pl.erasePolicy(0);
  EXPECT_EQ(pl.totalInstalledRules(), 0);
}

TEST(Placement, VisibleToFiltersByTag) {
  Fig3 net(5, 5, 5, 5, 5);
  PlacementProblem p = net.problem(fig3Policy());
  const auto& rules = p.policies[0].rules();
  Placement pl = buildPlacement(p, {{0, rules[2].id, net.s1}});
  EXPECT_EQ(pl.visibleTo(net.s1, 0).size(), 1u);
  EXPECT_TRUE(pl.visibleTo(net.s1, 1).empty());
}

TEST(Greedy, PlacesAtIngressWhenRoomy) {
  Fig3 net(5, 5, 5, 5, 5);
  GreedyOutcome out = greedyPlace(net.problem(fig3Policy()));
  ASSERT_TRUE(out.feasible);
  EXPECT_EQ(out.totalRules, 2);
  EXPECT_EQ(out.placement.usedCapacity(net.s1), 2);
  auto v = verifyPlacement(net.problem(fig3Policy()), out.placement);
  EXPECT_TRUE(v.ok) << v.summary();
}

TEST(Greedy, SpillsDownstreamUnderPressure) {
  Fig3 net(0, 1, 2, 0, 2);
  GreedyOutcome out = greedyPlace(net.problem(fig3Policy()));
  ASSERT_TRUE(out.feasible) << out.failureReason;
  EXPECT_EQ(out.totalRules, 4);
  auto v = verifyPlacement(net.problem(fig3Policy()), out.placement);
  EXPECT_TRUE(v.ok) << v.summary();
}

TEST(Greedy, ReportsFailureWhenStuck) {
  Fig3 net(0, 0, 1, 0, 2);
  GreedyOutcome out = greedyPlace(net.problem(fig3Policy()));
  EXPECT_FALSE(out.feasible);
  EXPECT_FALSE(out.failureReason.empty());
}

TEST(Baselines, ReplicateAllIsPTimesR) {
  Fig3 net(5, 5, 5, 5, 5);
  PlacementProblem p = net.problem(fig3Policy());
  EXPECT_EQ(replicateAllCount(p), 2 * 3);  // 2 paths x 3 rules
}

TEST(Baselines, PathwiseDuplicatesAcrossPaths) {
  // With room at the shared ingress, the ILP (and ingress-first greedy)
  // install drop+shield once; path-wise placement installs them once PER
  // PATH — the duplication the paper's global optimization eliminates.
  Fig3 net(5, 5, 5, 5, 5);
  PlacementProblem p = net.problem(fig3Policy());
  GreedyOutcome pw = pathwisePlace(p);
  ASSERT_TRUE(pw.feasible) << pw.failureReason;
  EXPECT_EQ(pw.totalRules, 4);  // 2 paths x (drop + shield)
  EXPECT_EQ(greedyPlace(p).totalRules, 2);
  auto v = verifyPlacement(p, pw.placement);
  EXPECT_TRUE(v.ok) << v.summary();
}

TEST(Baselines, PathwiseFailsWhereSharingSurvives) {
  // s1 can hold exactly one copy of {drop, shield}: path-wise needs two
  // copies (one per path) and dies; the sharing-aware strategies fit.
  Fig3 net(2, 0, 0, 0, 0);
  PlacementProblem p = net.problem(fig3Policy());
  GreedyOutcome pw = pathwisePlace(p);
  EXPECT_FALSE(pw.feasible);
  GreedyOutcome shared = greedyPlace(p);
  ASSERT_TRUE(shared.feasible) << shared.failureReason;
  EXPECT_EQ(shared.totalRules, 2);
  EXPECT_EQ(place(p).status, solver::OptStatus::kOptimal);
}

TEST(Baselines, PathwiseHonorsSlicing) {
  Fig3 net(5, 5, 5, 5, 5);
  acl::Policy q;
  q.addRule(T("1***"), Action::kDrop);
  q.addRule(T("0***"), Action::kDrop);
  PlacementProblem p = net.problem(std::move(q));
  p.routing[0].paths[0].traffic = T("1***");
  p.routing[0].paths[1].traffic = T("0***");
  GreedyOutcome sliced = pathwisePlace(p, true);
  ASSERT_TRUE(sliced.feasible);
  EXPECT_EQ(sliced.totalRules, 2);  // one relevant drop per path
  GreedyOutcome full = pathwisePlace(p, false);
  ASSERT_TRUE(full.feasible);
  EXPECT_EQ(full.totalRules, 4);
}

TEST(Encoder, PathSlicingDropsIrrelevantRules) {
  Fig3 net(5, 5, 5, 5, 5);
  acl::Policy q;
  q.addRule(T("1***"), Action::kDrop);  // only matches path A's traffic
  q.addRule(T("0***"), Action::kDrop);  // only matches path B's traffic
  PlacementProblem p = net.problem(std::move(q));
  p.routing[0].paths[0].traffic = T("1***");
  p.routing[0].paths[1].traffic = T("0***");

  EncoderOptions plain;
  Encoder full(p, plain);
  EncoderOptions sliced;
  sliced.enablePathSlicing = true;
  Encoder cut(p, sliced);
  EXPECT_EQ(cut.stats().slicedAwayRules, 2);
  EXPECT_LT(cut.stats().placementVars, full.stats().placementVars);
  EXPECT_LT(cut.stats().pathDependencyConstraints,
            full.stats().pathDependencyConstraints);

  PlaceOptions opts;
  opts.encoder = sliced;
  PlaceOutcome out = place(p, opts);
  ASSERT_EQ(out.status, solver::OptStatus::kOptimal);
  EXPECT_EQ(out.objective, 2);  // each drop once, on its own path
  auto v = verifyPlacement(out.solvedProblem, out.placement, true);
  EXPECT_TRUE(v.ok) << v.summary();
}

TEST(Encoder, MergingSharesIdenticalRulesAcrossPolicies) {
  // Two ingresses whose paths cross s2; identical blacklist rule merges.
  topo::Graph g;
  topo::SwitchId s1 = g.addSwitch(0);
  topo::SwitchId s2 = g.addSwitch(1);  // only room for the merged entry
  topo::SwitchId s3 = g.addSwitch(0);
  g.addLink(s1, s2);
  g.addLink(s2, s3);
  topo::PortId l1 = g.addEntryPort(s1);
  topo::PortId l2 = g.addEntryPort(s3);

  acl::Policy qa;
  qa.addRule(T("11**"), Action::kDrop);
  acl::Policy qb;
  qb.addRule(T("11**"), Action::kDrop);

  PlacementProblem p;
  p.graph = &g;
  p.routing = {{l1, {{l1, l2, {s1, s2, s3}, std::nullopt}}},
               {l2, {{l2, l1, {s3, s2, s1}, std::nullopt}}}};
  p.policies = {qa, qb};

  PlaceOptions noMerge;
  EXPECT_EQ(place(p, noMerge).status, solver::OptStatus::kInfeasible);

  PlaceOptions withMerge;
  withMerge.encoder.enableMerging = true;
  PlaceOutcome out = place(p, withMerge);
  ASSERT_EQ(out.status, solver::OptStatus::kOptimal);
  EXPECT_EQ(out.objective, 1);  // one shared entry on s2
  EXPECT_EQ(out.placement.usedCapacity(s2), 1);
  const auto& entry = out.placement.table(s2)[0];
  EXPECT_TRUE(entry.merged);
  EXPECT_EQ(entry.tags, (std::vector<int>{0, 1}));
  auto v = verifyPlacement(out.solvedProblem, out.placement);
  EXPECT_TRUE(v.ok) << v.summary();
}

TEST(Encoder, MergingRejectsNonTotalRulesObjective) {
  Fig3 net(5, 5, 5, 5, 5);
  PlacementProblem p = net.problem(fig3Policy());
  PlaceOptions opts;
  opts.encoder.enableMerging = true;
  opts.encoder.objective = ObjectiveKind::kUpstreamTraffic;
  EXPECT_THROW(place(p, opts), std::invalid_argument);
}

}  // namespace
}  // namespace ruleplace::core
