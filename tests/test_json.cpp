// Tests for JSON rendering of placements and reports.

#include <gtest/gtest.h>

#include "core/placer.h"
#include "io/json.h"
#include "io/scenario.h"

namespace ruleplace::io {
namespace {

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(jsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(Json, PlacementRendersEntries) {
  Scenario sc;
  parseScenario(
      "switch a capacity 5\nswitch b capacity 5\nlink a b\n"
      "port p1 switch a\nport p2 switch b\n"
      "path p1 p2 via a b\n"
      "policy p1\n"
      "  permit src 10.1.0.0/16\n"
      "  drop src 10.0.0.0/8\n"
      "end\n",
      sc);
  core::PlaceOutcome out = core::place(sc.problem());
  ASSERT_TRUE(out.hasSolution());
  std::string js = placementToJson(out.solvedProblem, out.placement);
  EXPECT_EQ(js.front(), '{');
  EXPECT_EQ(js.back(), '}');
  EXPECT_NE(js.find("\"switches\":["), std::string::npos);
  EXPECT_NE(js.find("\"action\":\"drop\""), std::string::npos);
  EXPECT_NE(js.find("\"action\":\"permit\""), std::string::npos);
  EXPECT_NE(js.find("\"tags\":[0]"), std::string::npos);
  EXPECT_NE(js.find("src 10.0.0.0/8"), std::string::npos);
  // Empty switches are omitted.
  EXPECT_EQ(js.find("\"name\":\"b\""), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  int brace = 0;
  int bracket = 0;
  for (char c : js) {
    brace += (c == '{') - (c == '}');
    bracket += (c == '[') - (c == ']');
    ASSERT_GE(brace, 0);
    ASSERT_GE(bracket, 0);
  }
  EXPECT_EQ(brace, 0);
  EXPECT_EQ(bracket, 0);
}

TEST(Json, ReportRendersAllFields) {
  PlacementReport r;
  r.totalInstalled = 12;
  r.requiredRules = 10;
  r.duplicationOverheadPct = 20.0;
  r.replicateAllRules = 48;
  r.switchesUsed = 3;
  r.maxSwitchLoad = 5;
  r.meanSwitchLoadPct = 41.5;
  r.mergedEntries = 2;
  std::string js = reportToJson(r);
  EXPECT_NE(js.find("\"rules_installed\":12"), std::string::npos);
  EXPECT_NE(js.find("\"duplication_overhead_pct\":20"), std::string::npos);
  EXPECT_NE(js.find("\"merged_entries\":2"), std::string::npos);
}

}  // namespace
}  // namespace ruleplace::io
