// Unit tests for the observability layer (src/obs): counters, histograms,
// span aggregation and nesting, the JSON exporters, and reset semantics.
//
// The registry under test is the process-global singleton, so every test
// begins with reset() + setEnabled(true) and disables recording on exit;
// tests in this binary must not assume a pristine registry beyond that.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "obs/obs.h"

namespace ruleplace::obs {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::global().reset();
    Registry::global().setEnabled(true);
  }
  void TearDown() override {
    Registry::global().setEnabled(false);
    Registry::global().reset();
  }
};

TEST_F(ObsTest, StubsReportDisabled) {
  // In the default build the layer is compiled in; under RULEPLACE_NO_OBS
  // the stubs must consistently report "off" so call sites skip work.
  if (!kCompiledIn) {
    Registry::global().setEnabled(true);
    EXPECT_FALSE(enabled());
    EXPECT_FALSE(Registry::global().enabled());
    EXPECT_EQ(Registry::global().chromeTraceJson(), "{\"traceEvents\":[]}");
  } else {
    Registry::global().setEnabled(true);
    EXPECT_TRUE(enabled());
  }
}

TEST_F(ObsTest, CounterFindOrCreateAndAccumulate) {
  Counter& c = Registry::global().counter("test.counter");
  EXPECT_EQ(c.value(), 0);
  c.add(3);
  c.add(4);
  // Same name -> same counter instance.
  EXPECT_EQ(&Registry::global().counter("test.counter"), &c);
  if (kCompiledIn) {
    EXPECT_EQ(c.value(), 7);
    EXPECT_EQ(Registry::global().counter("test.counter").value(), 7);
  }
}

TEST_F(ObsTest, HistogramTracksCountSumMaxAndBuckets) {
  if (!kCompiledIn) GTEST_SKIP() << "observability compiled out";
  Histogram& h = Registry::global().histogram("test.hist");
  h.record(1);   // bit_width 1 -> bucket 1
  h.record(5);   // bit_width 3 -> bucket 3
  h.record(7);   // bit_width 3 -> bucket 3
  h.record(0);   // <= 0 -> bucket 0
  h.record(-9);  // <= 0 -> bucket 0; still counted and summed
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.sum(), 1 + 5 + 7 + 0 - 9);
  EXPECT_EQ(h.max(), 7);
  EXPECT_EQ(h.bucket(0), 2);
  EXPECT_EQ(h.bucket(1), 1);
  EXPECT_EQ(h.bucket(3), 2);
}

TEST_F(ObsTest, SpanAggregatesPerName) {
  if (!kCompiledIn) GTEST_SKIP() << "observability compiled out";
  for (int i = 0; i < 3; ++i) {
    Span s("test.span");
    s.arg("i", i);
  }
  bool found = false;
  for (const SpanStat& st : Registry::global().spanStats()) {
    if (st.name == "test.span") {
      found = true;
      EXPECT_EQ(st.count, 3);
      EXPECT_GE(st.totalSeconds, 0.0);
      EXPECT_GE(st.maxSeconds, 0.0);
      EXPECT_LE(st.maxSeconds, st.totalSeconds + 1e-12);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(Registry::global().eventCount(), 3u);
}

TEST_F(ObsTest, SpansDoNotRecordWhileDisabled) {
  Registry::global().setEnabled(false);
  { Span s("test.disabled"); }
  EXPECT_EQ(Registry::global().eventCount(), 0u);
  EXPECT_TRUE(Registry::global().spanStats().empty());
}

TEST_F(ObsTest, NestedSpansCarryDepth) {
  if (!kCompiledIn) GTEST_SKIP() << "observability compiled out";
  {
    Span outer("test.outer");
    { Span inner("test.inner"); }
  }
  // Depth is exported as an arg on each trace event; the inner span must
  // be one level deeper than the outer one.
  const std::string trace = Registry::global().chromeTraceJson();
  EXPECT_NE(trace.find("\"test.outer\""), std::string::npos);
  EXPECT_NE(trace.find("\"test.inner\""), std::string::npos);
  const std::size_t inner = trace.find("\"test.inner\"");
  EXPECT_NE(trace.find("\"depth\":2", inner), std::string::npos);
}

TEST_F(ObsTest, ChromeTraceShapeAndEscaping) {
  if (!kCompiledIn) GTEST_SKIP() << "observability compiled out";
  Registry::global().setThreadLabel("test\"thread");
  {
    Span s("span\\with\"specials");
    s.arg("policies", 42);
  }
  const std::string trace = Registry::global().chromeTraceJson();
  // Document shape.
  EXPECT_EQ(trace.rfind("{\"traceEvents\":[", 0), 0u);
  // Thread-name metadata event plus the complete event.
  EXPECT_NE(trace.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(trace.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"policies\":42"), std::string::npos);
  // Quotes/backslashes in names must be escaped, never emitted raw.
  EXPECT_NE(trace.find("span\\\\with\\\"specials"), std::string::npos);
  EXPECT_NE(trace.find("test\\\"thread"), std::string::npos);
}

TEST_F(ObsTest, MetricsJsonContainsAllThreeSections) {
  Registry::global().counter("test.metric").add(5);
  if (kCompiledIn) {
    Registry::global().histogram("test.hist").record(3);
    { Span s("test.span"); }
  }
  const std::string json = Registry::global().metricsJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  if (kCompiledIn) {
    EXPECT_NE(json.find("\"test.metric\":5"), std::string::npos);
  }
}

TEST_F(ObsTest, ResetZeroesValuesButKeepsReferences) {
  if (!kCompiledIn) GTEST_SKIP() << "observability compiled out";
  Counter& c = Registry::global().counter("test.reset");
  Histogram& h = Registry::global().histogram("test.reset.hist");
  c.add(10);
  h.record(9);
  { Span s("test.reset.span"); }
  Registry::global().reset();
  // Same objects, zeroed values; the event list is empty again.
  EXPECT_EQ(&Registry::global().counter("test.reset"), &c);
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(Registry::global().eventCount(), 0u);
  EXPECT_TRUE(Registry::global().spanStats().empty());
}

TEST_F(ObsTest, ThreadsGetDistinctIdsAndLabels) {
  if (!kCompiledIn) GTEST_SKIP() << "observability compiled out";
  const int mainId = Registry::currentThreadId();
  int otherId = -1;
  std::thread t([&] {
    otherId = Registry::currentThreadId();
    Registry::global().setThreadLabel("worker");
    Span s("test.threaded");
  });
  t.join();
  EXPECT_NE(mainId, otherId);
  const std::string trace = Registry::global().chromeTraceJson();
  EXPECT_NE(trace.find("\"worker\""), std::string::npos);
}

TEST_F(ObsTest, CountersAreThreadSafe) {
  if (!kCompiledIn) GTEST_SKIP() << "observability compiled out";
  Counter& c = Registry::global().counter("test.mt");
  constexpr int kThreads = 4;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&c] {
      for (int j = 0; j < kAdds; ++j) c.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::int64_t>(kThreads) * kAdds);
}

#ifndef RULEPLACE_NO_OBS
TEST_F(ObsTest, RecordSpanInjectsEventsDirectly) {
  // recordSpan is public so non-RAII call sites (and tests) can inject
  // events with known durations.
  const auto start = std::chrono::steady_clock::now();
  const auto end = start + std::chrono::milliseconds(12);
  Registry::global().recordSpan("test.injected", start, end, 1, {});
  const auto stats = Registry::global().spanStats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].name, "test.injected");
  EXPECT_EQ(stats[0].count, 1);
  EXPECT_NEAR(stats[0].totalSeconds, 0.012, 1e-6);
  EXPECT_NEAR(stats[0].maxSeconds, 0.012, 1e-6);
}
#endif

}  // namespace
}  // namespace ruleplace::obs
