// Corpus replay: every minimized reproducer in tests/corpus/ must pass the
// differential oracle in every applicable placement mode.  A fixed bug
// stays fixed — new reproducers land here after their defect is repaired.
//
// RP_CORPUS_DIR is injected by the build (tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "fuzz/oracle.h"
#include "fuzz/orchestrator.h"
#include "fuzz/reproducer.h"

#ifndef RP_CORPUS_DIR
#error "RP_CORPUS_DIR must point at tests/corpus"
#endif

namespace ruleplace::fuzz {
namespace {

std::vector<std::string> corpusFiles() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(RP_CORPUS_DIR)) {
    if (entry.path().extension() == ".scenario") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(FuzzCorpus, HasEntries) {
  EXPECT_GE(corpusFiles().size(), 5u) << "corpus directory went missing?";
}

TEST(FuzzCorpus, EveryEntryParsesAsReproducer) {
  for (const std::string& path : corpusFiles()) {
    SCOPED_TRACE(path);
    Reproducer repro;
    ASSERT_NO_THROW(repro = loadReproducer(path));
    EXPECT_FALSE(repro.fuzzCase.policies.empty());
    EXPECT_NO_THROW(repro.fuzzCase.problem().validate());
  }
}

// The replay itself: recorded mode first, then the full mode matrix.
TEST(FuzzCorpus, ReplaysCleanThroughAllModes) {
  OracleOptions opts;
  opts.conflictBudget = 300000;
  opts.jobsSweep = {1, 2, 4};
  for (const std::string& path : corpusFiles()) {
    SCOPED_TRACE(path);
    const Reproducer repro = loadReproducer(path);
    OracleReport recorded =
        checkAllModes(repro.fuzzCase, {repro.mode}, opts);
    EXPECT_TRUE(recorded.ok()) << recorded.summary();
    OracleReport matrix = checkAllModes(repro.fuzzCase, {}, opts);
    EXPECT_TRUE(matrix.ok()) << matrix.summary();
    EXPECT_GT(matrix.counters.solves, 0);
  }
}

TEST(FuzzCorpus, HeaderedEntryCarriesItsMetadata) {
  const std::filesystem::path path =
      std::filesystem::path(RP_CORPUS_DIR) / "minimized_drop.scenario";
  const Reproducer repro = loadReproducer(path.string());
  EXPECT_EQ(repro.seed, 4242u);
  EXPECT_FALSE(repro.note.empty());
  EXPECT_EQ(repro.mode.toString(), ModeConfig{}.toString());
}

}  // namespace
}  // namespace ruleplace::fuzz
