// Focused tests for the semantic verifier's building blocks and the ECMP
// routing generator.

#include <gtest/gtest.h>

#include "core/placer.h"
#include "core/verify.h"
#include "topo/fattree.h"

namespace ruleplace::core {
namespace {

using acl::Action;
using match::Ternary;

Ternary T(const char* s) { return Ternary::fromString(s); }

InstalledRule entry(const char* field, Action a, std::vector<int> tags,
                    int prio) {
  InstalledRule r;
  r.matchField = T(field);
  r.action = a;
  r.tags = std::move(tags);
  r.priority = prio;
  return r;
}

TEST(SwitchDropSet, FirstMatchOrderMatters) {
  // permit above drop shields; drop above permit does not.
  InstalledRule permit = entry("11*", Action::kPermit, {0}, 2);
  InstalledRule drop = entry("1**", Action::kDrop, {0}, 1);
  match::CubeSet shielded =
      switchDropSet({&permit, &drop}, 3);
  EXPECT_TRUE(shielded.contains(T("100")));
  EXPECT_FALSE(shielded.contains(T("110")));

  match::CubeSet unshielded = switchDropSet({&drop, &permit}, 3);
  EXPECT_TRUE(unshielded.contains(T("110")));
}

TEST(SwitchDropSet, EmptyTableDropsNothing) {
  EXPECT_TRUE(switchDropSet({}, 4).empty());
}

TEST(SwitchDropSet, LaterDropShadowedByEarlierDrop) {
  InstalledRule wide = entry("1***", Action::kDrop, {0}, 2);
  InstalledRule narrow = entry("10**", Action::kDrop, {0}, 1);
  match::CubeSet drops = switchDropSet({&wide, &narrow}, 4);
  // Same set as wide alone.
  EXPECT_TRUE(drops.equals(match::CubeSet(T("1***"))));
}

TEST(DeployedDropSet, UnionsAcrossPathSwitches) {
  topo::Graph g;
  topo::SwitchId s0 = g.addSwitch(5);
  topo::SwitchId s1 = g.addSwitch(5);
  g.addLink(s0, s1);
  topo::PortId in = g.addEntryPort(s0);
  topo::PortId out = g.addEntryPort(s1);
  acl::Policy q;
  int d1 = q.addRule(T("10**"), Action::kDrop);
  int d2 = q.addRule(T("01**"), Action::kDrop);
  PlacementProblem p;
  p.graph = &g;
  topo::Path path{in, out, {s0, s1}, std::nullopt};
  p.routing = {{in, {path}}};
  p.policies = {q};
  Placement pl = buildPlacement(p, {{0, d1, s0}, {0, d2, s1}});
  match::CubeSet drops = deployedDropSet(pl, path, 0);
  EXPECT_TRUE(drops.contains(T("1000")));
  EXPECT_TRUE(drops.contains(T("0100")));
  EXPECT_FALSE(drops.contains(T("1100")));
}

TEST(Verify, MultiErrorReportEnumeratesAll) {
  topo::Graph g;
  topo::SwitchId s0 = g.addSwitch(5);
  topo::SwitchId s1 = g.addSwitch(5);
  g.addLink(s0, s1);
  topo::PortId in = g.addEntryPort(s0);
  topo::PortId out = g.addEntryPort(s1);
  acl::Policy q;
  q.addRule(T("1***"), Action::kDrop);
  PlacementProblem p;
  p.graph = &g;
  p.routing = {{in,
                {{in, out, {s0, s1}, std::nullopt},
                 {in, out, {s0, s1}, std::nullopt}}}};
  p.policies = {q};
  Placement empty(2);
  auto v = verifyPlacement(p, empty);
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.errors.size(), 2u);  // one per path
}

}  // namespace
}  // namespace ruleplace::core

namespace ruleplace::topo {
namespace {

TEST(EcmpPaths, InstallsWholeEqualCostGroup) {
  Graph g;
  buildFatTree(g, 4, 50);
  util::Rng rng(3);
  auto routing = generateEcmpPaths(g, {0}, 3, 8, rng);
  ASSERT_EQ(routing.size(), 1u);
  EXPECT_GE(routing[0].paths.size(), 3u);
  // All members of each (ingress, egress) group share the same length.
  std::map<PortId, int> lengthOf;
  for (const auto& p : routing[0].paths) {
    auto [it, inserted] = lengthOf.emplace(p.egress, p.hops());
    if (!inserted) {
      EXPECT_EQ(p.hops(), it->second);
    }
    EXPECT_EQ(p.ingress, 0);
  }
}

TEST(EcmpPaths, CrossPodFlowsGetFourPaths) {
  Graph g;
  buildFatTree(g, 4, 50);
  ShortestPathRouter router(g);
  // Deterministically verify the ECMP tier size via kShortest.
  auto tier = router.kShortest(0, g.entryPortCount() - 1, 16);
  int equal = 0;
  for (const auto& p : tier) {
    if (p.hops() == tier.front().hops()) ++equal;
  }
  EXPECT_EQ(equal, 4);  // k=4 fat-tree: 4 cross-pod ECMP paths
}

TEST(EcmpPaths, PlacementCoversEveryGroupMember) {
  // End to end: a drop must appear on every ECMP member path.
  Graph g;
  buildFatTree(g, 4, 2);  // tight: cannot just sit at the shared edge? it
                          // can (edge is shared by all members) - fine.
  util::Rng rng(5);
  auto routing = generateEcmpPaths(g, {0}, 2, 8, rng);
  acl::Policy q;
  q.addRule(match::Ternary::fromString("1***"), acl::Action::kDrop);
  core::PlacementProblem p;
  p.graph = &g;
  p.routing = routing;
  p.policies = {q};
  core::PlaceOutcome out = core::place(p);
  ASSERT_TRUE(out.hasSolution());
  auto v = core::verifyPlacement(out.solvedProblem, out.placement);
  EXPECT_TRUE(v.ok) << v.summary();
}

}  // namespace
}  // namespace ruleplace::topo
