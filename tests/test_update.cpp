// Tests for deployment update planning (two-phase rollout) and the
// monitoring-point placement constraint (§VII future work).

#include <gtest/gtest.h>

#include "core/incremental.h"
#include "core/instance.h"
#include "core/placer.h"
#include "core/update_plan.h"
#include "core/verify.h"
#include "match/cubeset.h"

namespace ruleplace::core {
namespace {

using acl::Action;
using match::Ternary;

Ternary T(const char* s) { return Ternary::fromString(s); }

// Simple 3-switch line with one ingress and one egress.
struct Line {
  topo::Graph graph;
  topo::PortId in, out;
  topo::SwitchId s0, s1, s2;

  explicit Line(int capacity) {
    s0 = graph.addSwitch(capacity);
    s1 = graph.addSwitch(capacity);
    s2 = graph.addSwitch(capacity);
    graph.addLink(s0, s1);
    graph.addLink(s1, s2);
    in = graph.addEntryPort(s0);
    out = graph.addEntryPort(s2);
  }

  PlacementProblem problem(acl::Policy q) const {
    PlacementProblem p;
    p.graph = &graph;
    p.routing = {{in, {{in, out, {s0, s1, s2}, std::nullopt}}}};
    p.policies = {std::move(q)};
    return p;
  }
};

acl::Policy simplePolicy() {
  acl::Policy q;
  q.addRule(T("1010"), Action::kPermit);
  q.addRule(T("10**"), Action::kDrop);
  return q;
}

TEST(UpdatePlan, EmptyDiffForIdenticalPlacements) {
  Line net(5);
  PlacementProblem p = net.problem(simplePolicy());
  PlaceOutcome a = place(p);
  ASSERT_TRUE(a.hasSolution());
  UpdatePlan plan = planUpdate(a.placement, a.placement);
  EXPECT_TRUE(plan.updates.empty());
  EXPECT_EQ(plan.addCount, 0);
  EXPECT_EQ(plan.removeCount, 0);
  EXPECT_EQ(plan.unchangedCount, a.placement.totalInstalledRules());
}

TEST(UpdatePlan, DiffCountsMovedEntries) {
  Line net(5);
  PlacementProblem p = net.problem(simplePolicy());
  const auto& rules = p.policies[0].rules();
  Placement from = buildPlacement(
      p, {{0, rules[0].id, net.s0}, {0, rules[1].id, net.s0}});
  Placement to = buildPlacement(
      p, {{0, rules[0].id, net.s2}, {0, rules[1].id, net.s2}});
  UpdatePlan plan = planUpdate(from, to);
  EXPECT_EQ(plan.addCount, 2);
  EXPECT_EQ(plan.removeCount, 2);
  ASSERT_EQ(plan.updates.size(), 2u);
  EXPECT_EQ(plan.updates[0].switchId, net.s0);
  EXPECT_EQ(plan.updates[0].remove.size(), 2u);
  EXPECT_EQ(plan.updates[1].switchId, net.s2);
  EXPECT_EQ(plan.updates[1].add.size(), 2u);
}

TEST(UpdatePlan, UnionStateContainsBothAndOrdersTargetFirst) {
  Line net(5);
  PlacementProblem p = net.problem(simplePolicy());
  const auto& rules = p.policies[0].rules();
  Placement from = buildPlacement(p, {{0, rules[1].id, net.s1}});
  Placement to = buildPlacement(
      p, {{0, rules[0].id, net.s1}, {0, rules[1].id, net.s1}});
  Placement u = unionState(from, to);
  // The stale and target copies of rules[1] are the same (match, action,
  // tags) entry, so the union holds exactly the target's two entries.
  EXPECT_EQ(u.usedCapacity(net.s1), 2);
  EXPECT_EQ(u.table(net.s1)[0].action, Action::kPermit);
}

TEST(UpdatePlan, TransientOverflowDetected) {
  Line net(2);
  PlacementProblem p = net.problem(simplePolicy());
  const auto& rules = p.policies[0].rules();
  Placement from = buildPlacement(
      p, {{0, rules[0].id, net.s0}, {0, rules[1].id, net.s0}});
  acl::Policy q2;  // a different policy whose entries do not dedupe
  q2.addRule(T("0101"), Action::kPermit);
  q2.addRule(T("01**"), Action::kDrop);
  PlacementProblem p2 = net.problem(q2);
  const auto& rules2 = p2.policies[0].rules();
  Placement to = buildPlacement(
      p2, {{0, rules2[0].id, net.s0}, {0, rules2[1].id, net.s0}});
  auto overflows = transientOverflows(p, from, to);
  ASSERT_EQ(overflows.size(), 1u);
  EXPECT_EQ(overflows[0], net.s0);
}

// Property: across a reroute, the phase-1 union state never drops a packet
// both deployments permit and never permits a packet both deployments
// drop, on every path of both routings (checked exactly with cube sets).
class UpdateSafetyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UpdateSafetyProperty, UnionStateIsFailSafe) {
  InstanceConfig cfg;
  cfg.fatTreeK = 4;
  cfg.capacity = 60;
  cfg.ingressCount = 4;
  cfg.totalPaths = 10;
  cfg.rulesPerPolicy = 8;
  cfg.seed = GetParam();
  Instance inst(cfg);
  PlaceOutcome base = place(inst.problem());
  ASSERT_TRUE(base.hasSolution());

  // Reroute policy 0, producing a second placement.
  util::Rng rng(GetParam() * 3 + 1);
  topo::ShortestPathRouter router(inst.graph());
  topo::PortId in0 = base.solvedProblem.routing[0].ingress;
  std::vector<topo::IngressPaths> newRouting{
      {in0,
       {router.route(in0, 1, rng),
        router.route(in0, inst.graph().entryPortCount() - 1, rng)}}};
  PlaceOptions fast;
  fast.satisfiabilityOnly = true;
  PlaceOutcome next = reroutePolicies(base.solvedProblem, base.placement, {0},
                                      newRouting, fast);
  ASSERT_TRUE(next.hasSolution());

  Placement u = unionState(base.placement, next.placement);
  // For every policy and every path present in either routing, check the
  // union state's drop set against the two endpoint deployments.
  for (int i = 0; i < base.solvedProblem.policyCount(); ++i) {
    std::vector<const topo::Path*> paths;
    for (const auto& path : base.solvedProblem.routing[static_cast<std::size_t>(i)].paths) {
      paths.push_back(&path);
    }
    for (const auto& path : next.solvedProblem.routing[static_cast<std::size_t>(i)].paths) {
      paths.push_back(&path);
    }
    for (const topo::Path* path : paths) {
      match::CubeSet oldDrop = deployedDropSet(base.placement, *path, i);
      match::CubeSet newDrop = deployedDropSet(next.placement, *path, i);
      match::CubeSet uniDrop = deployedDropSet(u, *path, i);
      // Dropped in union => dropped by old or new.
      match::CubeSet both = oldDrop;
      both.unite(newDrop);
      EXPECT_TRUE(both.coversSet(uniDrop))
          << "policy " << i << ": transient drop of a packet both "
          << "deployments permit";
      // Dropped by old AND new => dropped in union.
      match::CubeSet critical = oldDrop.intersect(newDrop);
      EXPECT_TRUE(uniDrop.coversSet(critical))
          << "policy " << i << ": transient leak of a packet both "
          << "deployments drop";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpdateSafetyProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---- monitoring points (§VII) ----------------------------------------------

TEST(Monitors, DropForcedDownstreamOfMonitor) {
  Line net(5);
  PlacementProblem p = net.problem(simplePolicy());
  PlaceOptions opts;
  opts.encoder.monitors = {{net.s1, T("10**")}};
  PlaceOutcome out = place(p, opts);
  ASSERT_EQ(out.status, solver::OptStatus::kOptimal);
  // The drop (and thus its shield) may not sit on s0, upstream of the
  // monitor on s1.
  EXPECT_EQ(out.placement.usedCapacity(net.s0), 0);
  EXPECT_GT(out.encodingStats.monitorForbiddenVars, 0);
  auto v = verifyPlacement(out.solvedProblem, out.placement);
  EXPECT_TRUE(v.ok) << v.summary();
}

TEST(Monitors, NonOverlappingMonitorChangesNothing) {
  Line net(5);
  PlacementProblem p = net.problem(simplePolicy());
  PlaceOptions opts;
  opts.encoder.monitors = {{net.s1, T("01**")}};  // disjoint from the drop
  PlaceOutcome out = place(p, opts);
  ASSERT_EQ(out.status, solver::OptStatus::kOptimal);
  EXPECT_EQ(out.encodingStats.monitorForbiddenVars, 0);
  EXPECT_EQ(out.objective, place(p).objective);
}

TEST(Monitors, MonitorAtIngressForbidsNothing) {
  Line net(5);
  PlacementProblem p = net.problem(simplePolicy());
  PlaceOptions opts;
  opts.encoder.monitors = {{net.s0, T("****")}};
  PlaceOutcome out = place(p, opts);
  ASSERT_EQ(out.status, solver::OptStatus::kOptimal);
  EXPECT_EQ(out.encodingStats.monitorForbiddenVars, 0);
}

TEST(Monitors, CanMakeInstanceInfeasible) {
  // Monitor at the last switch with zero capacity there: the drop has no
  // legal home.
  topo::Graph g;
  topo::SwitchId s0 = g.addSwitch(5);
  topo::SwitchId s1 = g.addSwitch(0);
  g.addLink(s0, s1);
  topo::PortId in = g.addEntryPort(s0);
  topo::PortId out = g.addEntryPort(s1);
  acl::Policy q;
  q.addRule(T("1***"), Action::kDrop);
  PlacementProblem p;
  p.graph = &g;
  p.routing = {{in, {{in, out, {s0, s1}, std::nullopt}}}};
  p.policies = {q};
  PlaceOptions opts;
  opts.encoder.monitors = {{s1, T("1***")}};
  EXPECT_EQ(place(p, opts).status, solver::OptStatus::kInfeasible);
  EXPECT_EQ(place(p).status, solver::OptStatus::kOptimal);
}

TEST(Monitors, RejectsBadMonitor) {
  Line net(5);
  PlacementProblem p = net.problem(simplePolicy());
  PlaceOptions opts;
  opts.encoder.monitors = {{99, T("1***")}};
  EXPECT_THROW(place(p, opts), std::invalid_argument);
  opts.encoder.monitors = {{net.s1, match::Ternary(8)}};  // width mismatch
  EXPECT_THROW(place(p, opts), std::invalid_argument);
}

}  // namespace
}  // namespace ruleplace::core
