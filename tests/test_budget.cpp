// Budget semantics regression tests: sliced()/normalized() edge cases and
// the optimizer's conflict-budget accounting across improvement steps.
//
// The bugs pinned here:
//   * Budget::sliced used to divide a small positive conflict limit below
//     1 (integer division), turning "a little work allowed" into
//     "exhausted" — parallel runs with tight budgets silently solved
//     nothing.
//   * Optimizer::run used to hand every strengthening iteration the full
//     conflict budget, so a Budget::conflicts(C) solve could burn k*C
//     conflicts over k improvement steps.
//   * IncrementalSession inherited the PlaceOptions deadline as an
//     ABSOLUTE point in time: once it passed, a long-lived session (the
//     serve daemon's normal state) rejected every further event.  The
//     session now re-arms the original span per event.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "solver/optimize.h"
#include "util/rng.h"

namespace ruleplace::solver {
namespace {

TEST(BudgetSlicing, UnlimitedStaysUnlimited) {
  Budget b = Budget::unlimited().sliced(8);
  EXPECT_TRUE(b.unlimitedConflicts());
  EXPECT_TRUE(b.unlimitedTime());
  // Canonical form: unlimited is exactly -1, whatever it was before.
  EXPECT_EQ(b.maxConflicts, -1);
  EXPECT_EQ(b.maxSeconds, -1.0);
}

TEST(BudgetSlicing, NegativeLimitsNormalizeToMinusOne) {
  Budget raw{-42, -3.5};
  Budget b = raw.normalized();
  EXPECT_EQ(b.maxConflicts, -1);
  EXPECT_EQ(b.maxSeconds, -1.0);
  EXPECT_TRUE(b.unlimitedConflicts());
  EXPECT_TRUE(b.unlimitedTime());
  // sliced() normalizes too, even for parts <= 1.
  Budget s = raw.sliced(1);
  EXPECT_EQ(s.maxConflicts, -1);
  EXPECT_EQ(s.maxSeconds, -1.0);
}

TEST(BudgetSlicing, EvenDivision) {
  Budget b = Budget::conflicts(1000).sliced(4);
  EXPECT_EQ(b.maxConflicts, 250);
  EXPECT_TRUE(b.unlimitedTime());

  Budget t = Budget::seconds(8.0).sliced(4);
  EXPECT_DOUBLE_EQ(t.maxSeconds, 2.0);
  EXPECT_TRUE(t.unlimitedConflicts());
}

TEST(BudgetSlicing, PositiveConflictLimitNeverSlicesToZero) {
  // parts > limit: integer division would give 0 == exhausted.  The floor
  // guarantees each sub-solve may still do at least one conflict of work.
  Budget b = Budget::conflicts(3).sliced(64);
  EXPECT_EQ(b.maxConflicts, 1);
  EXPECT_FALSE(b.conflictsExhausted());
  EXPECT_FALSE(b.exhausted());
}

TEST(BudgetSlicing, PositiveTimeLimitStaysPositive) {
  // Even a denormal-small share must remain > 0 (0 means exhausted).
  Budget b = Budget::seconds(std::numeric_limits<double>::min()).sliced(1000);
  EXPECT_GT(b.maxSeconds, 0.0);
  EXPECT_FALSE(b.timeExhausted());
}

TEST(BudgetSlicing, ExhaustedStaysExhausted) {
  // A zero limit means the budget is already spent; slicing must not
  // resurrect it via the >= 1 floor.
  Budget c{0, -1.0};
  EXPECT_TRUE(c.conflictsExhausted());
  EXPECT_EQ(c.sliced(4).maxConflicts, 0);
  EXPECT_TRUE(c.sliced(4).conflictsExhausted());

  Budget t{-1, 0.0};
  EXPECT_TRUE(t.timeExhausted());
  EXPECT_EQ(t.sliced(4).maxSeconds, 0.0);
  EXPECT_TRUE(t.sliced(4).exhausted());
}

TEST(BudgetSlicing, MixedLimitsSliceIndependently) {
  Budget b{100, 10.0};
  Budget s = b.sliced(10);
  EXPECT_EQ(s.maxConflicts, 10);
  EXPECT_DOUBLE_EQ(s.maxSeconds, 1.0);
}

// ---------------------------------------------------------------------------
// Conflict accounting across improvement steps.

/// Random 3-literal "at least one" clauses near the solubility threshold,
/// plus a minimize-sum objective.  The fixed seed makes the instance (and
/// the deterministic solver's conflict counts) reproducible: the initial
/// SAT solve and each objective-strengthening step all require real
/// search, so a per-step budget leak multiplies the spend.
Model hardMinimizeModel(int vars, int clauses, std::uint64_t seed) {
  util::Rng rng(seed);
  Model m;
  std::vector<ModelVar> xs;
  xs.reserve(static_cast<std::size_t>(vars));
  for (int i = 0; i < vars; ++i) xs.push_back(m.addBinary());
  for (int c = 0; c < clauses; ++c) {
    LinearExpr clause;
    for (int k = 0; k < 3; ++k) {
      const ModelVar v =
          xs[static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(vars)))];
      if (rng.below(2) == 0) {
        clause.add(1, v);  // positive literal
      } else {
        clause.add(-1, v).addConstant(1);  // negated literal: (1 - v)
      }
    }
    m.addConstraint(clause, Cmp::kGe, 1);
  }
  LinearExpr obj;
  for (ModelVar v : xs) obj.add(1, v);
  m.setObjective(obj);
  return m;
}

TEST(BudgetAccounting, ConflictBudgetSpansImprovementSteps) {
  Model m = hardMinimizeModel(/*vars=*/70, /*clauses=*/224, /*seed=*/9);

  // Sanity: with no budget the optimizer needs several improvement steps
  // and far more conflicts than the budget below — otherwise this test
  // could not distinguish per-step from total accounting.
  OptResult full = Optimizer::solve(m);
  ASSERT_TRUE(full.hasSolution());
  ASSERT_GE(full.improvementSteps, 2);
  const std::int64_t kBudget = 40;
  ASSERT_GT(full.stats.conflicts, 3 * kBudget);

  OptResult r = Optimizer::solve(m, Budget::conflicts(kBudget));
  // The conflict budget is a bound on the WHOLE optimization, not a
  // per-step allowance.  Each solver call may overshoot by the single
  // conflict that trips its budget check, and a step entered with an
  // exhausted budget still stops at its first conflict, so allow one
  // conflict of slack per step.
  EXPECT_LE(r.stats.conflicts, kBudget + r.improvementSteps + 1)
      << "conflict budget leaked across improvement steps";
  // A budgeted run that found something reports it as feasible (or, if the
  // search happened to finish, optimal) — never as a silent failure.
  if (r.hasSolution()) {
    EXPECT_GE(r.objective, full.objective);
  }
}

TEST(BudgetAccounting, UnlimitedBudgetUnaffectedByAccounting) {
  // The remaining-budget bookkeeping must not clip unlimited solves.
  Model m = hardMinimizeModel(/*vars=*/60, /*clauses=*/192, /*seed=*/2);
  OptResult r = Optimizer::solve(m, Budget::unlimited());
  EXPECT_EQ(r.status, OptStatus::kOptimal);
}

}  // namespace
}  // namespace ruleplace::solver

// ---- per-event deadlines in long-lived sessions ---------------------------

#include <chrono>
#include <thread>

#include "core/incremental.h"
#include "core/verify.h"

namespace ruleplace::core {
namespace {

TEST(SessionDeadline, EventsOutlivingTheOriginalDeadlineStillSolve) {
  // Regression: the session captured options.budget.deadline (an absolute
  // steady-clock point) at construction and solved every event against it.
  // In a daemon that lives for hours, the deadline expired once and then
  // rejected every event forever.  Each event must get a fresh deadline of
  // the configured SPAN instead.
  topo::Graph g;
  const topo::SwitchId s0 = g.addSwitch(4);
  const topo::SwitchId s1 = g.addSwitch(4);
  g.addLink(s0, s1);
  const topo::PortId in = g.addEntryPort(s0);
  const topo::PortId out = g.addEntryPort(s1);

  PlacementProblem base;
  base.graph = &g;
  PlaceOptions opts;
  opts.budget.deadline = util::Deadline::in(0.15);
  IncrementalSession session(base, Placement{}, opts);

  // Sleep past the construction-time deadline; a trivial event afterwards
  // must still have its full 150 ms span available.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));

  acl::Policy q;
  q.addRule(match::Ternary::fromString("10"), acl::Action::kPermit);
  q.addRule(match::Ternary::fromString("1*"), acl::Action::kDrop);
  topo::Path p;
  p.ingress = in;
  p.egress = out;
  p.switches = {s0, s1};
  PlaceOutcome result = session.install({{in, {p}}}, {q});
  ASSERT_TRUE(result.hasSolution())
      << "session deadline went stale: "
      << (result.failure ? result.failure->message : "no failure info");
  EXPECT_TRUE(verifyPlacement(session.problem(), session.placement()));

  // And again — the re-arm happens per event, not once.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  acl::Policy q2;
  q2.addRule(match::Ternary::fromString("01"), acl::Action::kPermit);
  q2.addRule(match::Ternary::fromString("0*"), acl::Action::kDrop);
  EXPECT_TRUE(session.install({{in, {p}}}, {q2}).hasSolution());
}

}  // namespace
}  // namespace ruleplace::core
