// Additional placement/table edge cases: merged-entry tag surgery,
// ordering determinism, and miscellaneous API guards.

#include <gtest/gtest.h>

#include "core/encoder.h"
#include "core/placer.h"
#include "core/verify.h"

namespace ruleplace::core {
namespace {

using acl::Action;
using match::Ternary;

Ternary T(const char* s) { return Ternary::fromString(s); }

// Shared-middle topology from the merging test: two ingresses whose paths
// cross s1 (capacity only there), with an identical blacklist rule.
struct SharedMiddle {
  topo::Graph graph;
  topo::SwitchId s0, s1, s2;
  PlacementProblem problem;

  SharedMiddle() {
    s0 = graph.addSwitch(0);
    s1 = graph.addSwitch(1);
    s2 = graph.addSwitch(0);
    graph.addLink(s0, s1);
    graph.addLink(s1, s2);
    topo::PortId l0 = graph.addEntryPort(s0);
    topo::PortId l2 = graph.addEntryPort(s2);
    acl::Policy qa;
    qa.addRule(T("11**"), Action::kDrop);
    acl::Policy qb;
    qb.addRule(T("11**"), Action::kDrop);
    problem.graph = &graph;
    problem.routing = {{l0, {{l0, l2, {s0, s1, s2}, std::nullopt}}},
                       {l2, {{l2, l0, {s2, s1, s0}, std::nullopt}}}};
    problem.policies = {qa, qb};
  }
};

TEST(MergedEntries, ErasePolicyStripsOneTagKeepsEntry) {
  SharedMiddle net;
  PlaceOptions opts;
  opts.encoder.enableMerging = true;
  PlaceOutcome out = place(net.problem, opts);
  ASSERT_TRUE(out.hasSolution());
  ASSERT_EQ(out.placement.table(net.s1).size(), 1u);
  ASSERT_EQ(out.placement.table(net.s1)[0].tags.size(), 2u);

  Placement stripped = out.placement;
  stripped.erasePolicy(0);
  // The shared entry survives for policy 1.
  ASSERT_EQ(stripped.table(net.s1).size(), 1u);
  EXPECT_EQ(stripped.table(net.s1)[0].tags, (std::vector<int>{1}));
  // Policy 1's semantics are intact on its path.
  PlacementProblem only1 = out.solvedProblem;
  match::CubeSet drops = deployedDropSet(
      stripped, only1.routing[1].paths[0], 1);
  EXPECT_TRUE(drops.equals(only1.policies[1].dropSet()));
  // Policy 0 no longer sees it.
  EXPECT_TRUE(stripped.visibleTo(net.s1, 0).empty());

  // Erasing the second policy removes the entry entirely.
  stripped.erasePolicy(1);
  EXPECT_EQ(stripped.totalInstalledRules(), 0);
}

TEST(MergedEntries, AppendMappedRemapsMergedTags) {
  SharedMiddle net;
  PlaceOptions opts;
  opts.encoder.enableMerging = true;
  PlaceOutcome out = place(net.problem, opts);
  ASSERT_TRUE(out.hasSolution());
  Placement target(net.graph.switchCount());
  target.appendMapped(out.placement, {7, 3});
  ASSERT_EQ(target.table(net.s1).size(), 1u);
  EXPECT_EQ(target.table(net.s1)[0].tags, (std::vector<int>{3, 7}));
}

TEST(Extraction, DeterministicAcrossRepeatedSolves) {
  SharedMiddle net;
  PlaceOptions opts;
  opts.encoder.enableMerging = true;
  PlaceOutcome a = place(net.problem, opts);
  PlaceOutcome b = place(net.problem, opts);
  ASSERT_TRUE(a.hasSolution());
  ASSERT_TRUE(b.hasSolution());
  EXPECT_EQ(a.objective, b.objective);
  for (int sw = 0; sw < net.graph.switchCount(); ++sw) {
    const auto& ta = a.placement.table(sw);
    const auto& tb = b.placement.table(sw);
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t i = 0; i < ta.size(); ++i) {
      EXPECT_EQ(ta[i].matchField, tb[i].matchField);
      EXPECT_EQ(ta[i].tags, tb[i].tags);
      EXPECT_EQ(ta[i].priority, tb[i].priority);
    }
  }
}

TEST(Placement, ToStringListsEntries) {
  SharedMiddle net;
  PlaceOptions opts;
  opts.encoder.enableMerging = true;
  PlaceOutcome out = place(net.problem, opts);
  ASSERT_TRUE(out.hasSolution());
  std::string text = out.placement.toString(out.solvedProblem);
  EXPECT_NE(text.find("11**"), std::string::npos);
  EXPECT_NE(text.find("(merged)"), std::string::npos);
  EXPECT_NE(text.find("tags={0,1}"), std::string::npos);
}

TEST(Placement, AppendMappedRejectsSizeMismatch) {
  Placement a(3);
  Placement b(2);
  EXPECT_THROW(a.appendMapped(b, {0}), std::invalid_argument);
}

TEST(BuildPlacement, RejectsUnknownRule) {
  SharedMiddle net;
  EXPECT_THROW(buildPlacement(net.problem, {{0, 999, net.s1}}),
               std::invalid_argument);
}

TEST(Problem, CapacityOverrideTakesPrecedence) {
  SharedMiddle net;
  PlacementProblem p = net.problem;
  EXPECT_EQ(p.capacityOf(net.s1), 1);
  p.capacityOverride = {5, 0, 5};
  EXPECT_EQ(p.capacityOf(net.s1), 0);
  // With the override the middle switch is unusable, but the end switches
  // (capacity 0 in the graph) open up: the drops move to the ends.
  PlaceOutcome out = place(p);
  ASSERT_EQ(out.status, solver::OptStatus::kOptimal);
  EXPECT_EQ(out.placement.usedCapacity(net.s1), 0);
  EXPECT_GT(out.placement.usedCapacity(net.s0), 0);
  auto v = verifyPlacement(out.solvedProblem, out.placement);
  EXPECT_TRUE(v.ok) << v.summary();
}

TEST(Verify, SlicedPlacementFailsUnslicedCheck) {
  // A placement produced with slicing implements only the sliced
  // semantics; checking it against the *full* policy on each path must
  // fail (documents why verifyPlacement takes respectTraffic).
  topo::Graph g;
  topo::SwitchId s0 = g.addSwitch(4);
  topo::SwitchId s1 = g.addSwitch(4);
  g.addLink(s0, s1);
  topo::PortId in = g.addEntryPort(s0);
  topo::PortId out = g.addEntryPort(s1);
  acl::Policy q;
  q.addRule(T("1***"), Action::kDrop);
  q.addRule(T("0***"), Action::kDrop);
  PlacementProblem p;
  p.graph = &g;
  topo::Path path{in, out, {s0, s1}, T("1***")};
  p.routing = {{in, {path}}};
  p.policies = {q};
  PlaceOptions opts;
  opts.encoder.enablePathSlicing = true;
  PlaceOutcome sol = place(p, opts);
  ASSERT_TRUE(sol.hasSolution());
  EXPECT_TRUE(verifyPlacement(sol.solvedProblem, sol.placement, true).ok);
  EXPECT_FALSE(verifyPlacement(sol.solvedProblem, sol.placement, false).ok);
}

}  // namespace
}  // namespace ruleplace::core
