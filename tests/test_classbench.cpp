// Tests for the ClassBench-style policy generator: determinism, structural
// knobs, and the properties placement relies on.

#include <gtest/gtest.h>

#include "classbench/generator.h"
#include "depgraph/depgraph.h"

namespace ruleplace::classbench {
namespace {

TEST(Generator, ProducesRequestedRuleCount) {
  GeneratorConfig cfg;
  cfg.rulesPerPolicy = 37;
  PolicyGenerator gen(cfg, 1);
  acl::Policy q = gen.generate();
  EXPECT_EQ(q.size(), 37u);
}

TEST(Generator, DeterministicForSameSeed) {
  GeneratorConfig cfg;
  cfg.rulesPerPolicy = 25;
  PolicyGenerator a(cfg, 99);
  PolicyGenerator b(cfg, 99);
  acl::Policy qa = a.generate();
  acl::Policy qb = b.generate();
  ASSERT_EQ(qa.size(), qb.size());
  for (std::size_t i = 0; i < qa.size(); ++i) {
    EXPECT_EQ(qa.rules()[i].matchField, qb.rules()[i].matchField);
    EXPECT_EQ(qa.rules()[i].action, qb.rules()[i].action);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorConfig cfg;
  PolicyGenerator a(cfg, 1);
  PolicyGenerator b(cfg, 2);
  acl::Policy qa = a.generate();
  acl::Policy qb = b.generate();
  bool anyDifferent = false;
  for (std::size_t i = 0; i < qa.size(); ++i) {
    if (!(qa.rules()[i].matchField == qb.rules()[i].matchField)) {
      anyDifferent = true;
      break;
    }
  }
  EXPECT_TRUE(anyDifferent);
}

TEST(Generator, AlwaysContainsADropRule) {
  GeneratorConfig cfg;
  cfg.rulesPerPolicy = 5;
  cfg.dropFraction = 0.0;  // adversarial: generator must still force one
  PolicyGenerator gen(cfg, 3);
  for (int i = 0; i < 10; ++i) {
    acl::Policy q = gen.generate();
    int drops = 0;
    for (const auto& r : q.rules()) {
      drops += (r.action == acl::Action::kDrop) ? 1 : 0;
    }
    EXPECT_GE(drops, 1);
  }
}

TEST(Generator, DropFractionRoughlyHonored) {
  GeneratorConfig cfg;
  cfg.rulesPerPolicy = 400;
  cfg.dropFraction = 0.5;
  PolicyGenerator gen(cfg, 11);
  acl::Policy q = gen.generate();
  int drops = 0;
  for (const auto& r : q.rules()) {
    drops += (r.action == acl::Action::kDrop) ? 1 : 0;
  }
  EXPECT_GT(drops, 120);
  EXPECT_LT(drops, 280);
}

TEST(Generator, NestingCreatesDependencies) {
  GeneratorConfig cfg;
  cfg.rulesPerPolicy = 60;
  cfg.nestProbability = 0.7;
  PolicyGenerator gen(cfg, 5);
  acl::Policy q = gen.generate();
  depgraph::DependencyGraph dg(q);
  EXPECT_GT(dg.edgeCount(), 0u)
      << "nested generation must produce permit->drop shields";
}

TEST(Generator, PrioritiesStrictlyDescending) {
  GeneratorConfig cfg;
  PolicyGenerator gen(cfg, 8);
  acl::Policy q = gen.generate();
  for (std::size_t i = 1; i < q.size(); ++i) {
    EXPECT_GT(q.rules()[i - 1].priority, q.rules()[i].priority);
  }
}

TEST(GlobalBlacklist, SharedRulesAreIdenticalDropRules) {
  GeneratorConfig cfg;
  PolicyGenerator gen(cfg, 21);
  auto blacklist = gen.globalBlacklist(6);
  ASSERT_EQ(blacklist.size(), 6u);
  for (const auto& r : blacklist) {
    EXPECT_EQ(r.action, acl::Action::kDrop);
  }
  // Appended to two policies, the rules match exactly (mergeable).
  acl::Policy q1 = gen.generate();
  acl::Policy q2 = gen.generate();
  PolicyGenerator::appendShared(q1, blacklist);
  PolicyGenerator::appendShared(q2, blacklist);
  const auto& r1 = q1.rules();
  const auto& r2 = q2.rules();
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(r1[r1.size() - 6 + i].matchField,
              r2[r2.size() - 6 + i].matchField);
  }
}

TEST(GlobalBlacklist, AppendSharedKeepsPolicySemanticsAboveIt) {
  GeneratorConfig cfg;
  cfg.rulesPerPolicy = 10;
  PolicyGenerator gen(cfg, 31);
  acl::Policy q = gen.generate();
  std::size_t before = q.size();
  auto blacklist = gen.globalBlacklist(3);
  PolicyGenerator::appendShared(q, blacklist);
  EXPECT_EQ(q.size(), before + 3);
  // Shared rules are at the bottom of the priority order.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(q.rules()[before + i].action, acl::Action::kDrop);
  }
}

}  // namespace
}  // namespace ruleplace::classbench
