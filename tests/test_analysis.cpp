// Tests for policy analysis (diff, drop fraction, shadowing) and cube-set
// volume computation.

#include <gtest/gtest.h>

#include "acl/analysis.h"
#include "acl/redundancy.h"
#include "classbench/generator.h"
#include "util/rng.h"

namespace ruleplace::acl {
namespace {

using match::CubeSet;
using match::Ternary;

Ternary T(const char* s) { return Ternary::fromString(s); }

TEST(Volume, BasicFractions) {
  CubeSet s(4);
  EXPECT_DOUBLE_EQ(static_cast<double>(s.volumeFraction()), 0.0);
  s.add(T("1***"));
  EXPECT_DOUBLE_EQ(static_cast<double>(s.volumeFraction()), 0.5);
  s.add(T("01**"));
  EXPECT_DOUBLE_EQ(static_cast<double>(s.volumeFraction()), 0.75);
  s.add(T("****"));
  EXPECT_DOUBLE_EQ(static_cast<double>(s.volumeFraction()), 1.0);
}

TEST(Volume, OverlapsNotDoubleCounted) {
  CubeSet s(4);
  s.add(T("1***"));
  s.add(T("**11"));  // overlaps 1*11
  // |1***| = 8/16, |**11 \ 1***| = |0*11| = 2/16 -> 10/16.
  EXPECT_DOUBLE_EQ(static_cast<double>(s.volumeFraction()), 0.625);
}

TEST(PolicyDiff, EmptyForEquivalentPolicies) {
  Policy a;
  a.addRule(T("1*"), Action::kDrop);
  Policy b;
  b.addRule(T("10"), Action::kDrop);
  b.addRule(T("11"), Action::kDrop);
  EXPECT_TRUE(policyDiff(a, b).empty());
}

TEST(PolicyDiff, FindsBothDirections) {
  Policy a;
  a.addRule(T("1*"), Action::kDrop);  // drops 10, 11
  Policy b;
  b.addRule(T("*1"), Action::kDrop);  // drops 01, 11
  CubeSet diff = policyDiff(a, b);
  EXPECT_TRUE(diff.contains(T("10")));  // a drops, b permits
  EXPECT_TRUE(diff.contains(T("01")));  // b drops, a permits
  EXPECT_FALSE(diff.contains(T("11")));
  EXPECT_FALSE(diff.contains(T("00")));
  EXPECT_DOUBLE_EQ(static_cast<double>(diff.volumeFraction()), 0.5);
}

TEST(DropFraction, RespectsShielding) {
  Policy q;
  q.addRule(T("11*"), Action::kPermit);
  q.addRule(T("1**"), Action::kDrop);  // effectively drops only 10*
  EXPECT_DOUBLE_EQ(static_cast<double>(dropFraction(q)), 0.25);
}

TEST(RuleEffects, ReportsShadowedAndFractions) {
  Policy q;
  int top = q.addRule(T("1***"), Action::kPermit);
  int partial = q.addRule(T("1*1*"), Action::kDrop);   // fully shadowed
  int bottom = q.addRule(T("****"), Action::kDrop);    // decides 0***
  auto effects = ruleEffects(q);
  ASSERT_EQ(effects.size(), 3u);
  EXPECT_EQ(effects[0].ruleId, top);
  EXPECT_DOUBLE_EQ(static_cast<double>(effects[0].effectiveFraction), 0.5);
  EXPECT_FALSE(effects[0].shadowed);
  EXPECT_EQ(effects[1].ruleId, partial);
  EXPECT_TRUE(effects[1].shadowed);
  EXPECT_EQ(effects[2].ruleId, bottom);
  EXPECT_DOUBLE_EQ(static_cast<double>(effects[2].effectiveFraction), 0.5);

  auto shadowed = shadowedRules(q);
  ASSERT_EQ(shadowed.size(), 1u);
  EXPECT_EQ(shadowed[0], partial);
}

TEST(RuleEffects, EffectiveFractionsSumToCoverage) {
  // The effective fractions of all rules partition the matched space.
  Policy q;
  q.addRule(T("11**"), Action::kPermit);
  q.addRule(T("1***"), Action::kDrop);
  q.addRule(T("**00"), Action::kDrop);
  auto effects = ruleEffects(q);
  long double sum = 0;
  for (const auto& e : effects) sum += e.effectiveFraction;
  // Matched space = union of all fields.
  CubeSet all(4);
  for (const auto& r : q.rules()) all.add(r.matchField);
  EXPECT_NEAR(static_cast<double>(sum),
              static_cast<double>(all.volumeFraction()), 1e-12);
}

// Properties on generated policies.
class AnalysisProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnalysisProperty, ShadowedRulesAreExactlyTheMaskedRedundancies) {
  classbench::GeneratorConfig cfg;
  cfg.rulesPerPolicy = 16;
  cfg.nestProbability = 0.8;
  classbench::PolicyGenerator gen(cfg, GetParam());
  Policy q = gen.generate();
  for (int id : shadowedRules(q)) {
    EXPECT_TRUE(isRedundant(q, id));
  }
  // Diff with self is empty; drop fraction is in [0, 1].
  EXPECT_TRUE(policyDiff(q, q).empty());
  long double f = dropFraction(q);
  EXPECT_GE(f, 0.0L);
  EXPECT_LE(f, 1.0L);
}

TEST_P(AnalysisProperty, RedundancyRemovalPreservesDropFraction) {
  classbench::GeneratorConfig cfg;
  cfg.rulesPerPolicy = 14;
  cfg.nestProbability = 0.8;
  classbench::PolicyGenerator gen(cfg, GetParam() * 7);
  Policy q = gen.generate();
  long double before = dropFraction(q);
  removeRedundant(q);
  EXPECT_NEAR(static_cast<double>(dropFraction(q)),
              static_cast<double>(before), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalysisProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace ruleplace::acl
