// Tests for the ACL policy model, first-match semantics, drop sets, and
// complete redundancy removal.

#include <gtest/gtest.h>

#include "acl/policy.h"
#include "acl/redundancy.h"
#include "classbench/generator.h"
#include "match/tuple5.h"
#include "util/rng.h"

namespace ruleplace::acl {
namespace {

using match::CubeSet;
using match::Ternary;

Ternary T(const char* s) { return Ternary::fromString(s); }

TEST(Policy, RulesKeptInPriorityOrder) {
  Policy q;
  q.addRuleWithPriority(T("00"), Action::kDrop, 5);
  q.addRuleWithPriority(T("01"), Action::kPermit, 10);
  q.addRuleWithPriority(T("10"), Action::kDrop, 7);
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q.rules()[0].priority, 10);
  EXPECT_EQ(q.rules()[1].priority, 7);
  EXPECT_EQ(q.rules()[2].priority, 5);
}

TEST(Policy, PrioritiesAreStrictlyUnique) {
  Policy q;
  q.addRuleWithPriority(T("00"), Action::kDrop, 5);
  EXPECT_THROW(q.addRuleWithPriority(T("11"), Action::kPermit, 5),
               std::invalid_argument);
}

TEST(Policy, WidthMustMatch) {
  Policy q;
  q.addRule(T("00"), Action::kDrop);
  EXPECT_THROW(q.addRule(T("000"), Action::kDrop), std::invalid_argument);
}

TEST(Policy, FirstMatchEvaluation) {
  Policy q;
  q.addRule(T("1*"), Action::kPermit);  // higher priority
  q.addRule(T("**"), Action::kDrop);
  EXPECT_EQ(q.evaluate(T("10")), Action::kPermit);
  EXPECT_EQ(q.evaluate(T("01")), Action::kDrop);
}

TEST(Policy, DefaultIsPermit) {
  Policy q;
  q.addRule(T("11"), Action::kDrop);
  EXPECT_EQ(q.evaluate(T("00")), Action::kPermit);
  EXPECT_EQ(q.firstMatch(T("00")), nullptr);
}

TEST(Policy, RemoveRule) {
  Policy q;
  int id = q.addRule(T("11"), Action::kDrop);
  EXPECT_TRUE(q.removeRule(id));
  EXPECT_FALSE(q.removeRule(id));
  EXPECT_TRUE(q.empty());
}

TEST(Policy, EffectiveMatchSubtractsHigherPriority) {
  Policy q;
  q.addRule(T("1*"), Action::kPermit);
  int drop = q.addRule(T("**"), Action::kDrop);
  CubeSet eff = q.effectiveMatch(drop);
  EXPECT_TRUE(eff.contains(T("00")));
  EXPECT_TRUE(eff.contains(T("01")));
  EXPECT_FALSE(eff.contains(T("10")));
  EXPECT_FALSE(eff.contains(T("11")));
}

TEST(Policy, DropSetRespectsShadowing) {
  Policy q;
  q.addRule(T("11*"), Action::kPermit);
  q.addRule(T("1**"), Action::kDrop);
  CubeSet drops = q.dropSet();
  EXPECT_TRUE(drops.contains(T("100")));
  EXPECT_TRUE(drops.contains(T("101")));
  EXPECT_FALSE(drops.contains(T("110")));
  EXPECT_FALSE(drops.contains(T("000")));
}

TEST(Policy, DropSetWithinTraffic) {
  Policy q;
  q.addRule(T("1**"), Action::kDrop);
  CubeSet sliced = q.dropSetWithin(T("**1"));
  EXPECT_TRUE(sliced.contains(T("101")));
  EXPECT_FALSE(sliced.contains(T("100")));
}

TEST(Policy, SemanticEquality) {
  Policy a;
  a.addRule(T("1*"), Action::kDrop);
  Policy b;
  b.addRule(T("10"), Action::kDrop);
  b.addRule(T("11"), Action::kDrop);
  EXPECT_TRUE(a.semanticallyEquals(b));
  b.addRule(T("00"), Action::kDrop);
  EXPECT_FALSE(a.semanticallyEquals(b));
}

TEST(Redundancy, MaskedRuleIsRemoved) {
  Policy q;
  q.addRule(T("1*"), Action::kPermit);
  int masked = q.addRule(T("10"), Action::kDrop);  // fully shadowed
  EXPECT_TRUE(isRedundant(q, masked));
  auto removed = removeRedundant(q);
  // The masked drop goes first; the now-unneeded permit (default is
  // permit) follows — complete removal collapses the policy entirely.
  ASSERT_EQ(removed.size(), 2u);
  EXPECT_EQ(removed[0].ruleId, masked);
  EXPECT_EQ(removed[0].kind, RedundancyKind::kMasked);
  EXPECT_TRUE(q.empty());
}

TEST(Redundancy, DownstreamSameDecision) {
  Policy q;
  int narrow = q.addRule(T("11"), Action::kDrop);
  q.addRule(T("1*"), Action::kDrop);  // broader, same action, below
  EXPECT_TRUE(isRedundant(q, narrow));
  removeRedundant(q);
  EXPECT_EQ(q.size(), 1u);
}

TEST(Redundancy, TrailingPermitMatchesDefault) {
  Policy q;
  q.addRule(T("0*"), Action::kDrop);
  int permit = q.addRule(T("1*"), Action::kPermit);  // default is permit
  EXPECT_TRUE(isRedundant(q, permit));
}

TEST(Redundancy, NecessaryRulesSurvive) {
  Policy q;
  q.addRule(T("11"), Action::kPermit);
  q.addRule(T("1*"), Action::kDrop);
  EXPECT_FALSE(isRedundant(q, q.rules()[0].id));
  EXPECT_FALSE(isRedundant(q, q.rules()[1].id));
  EXPECT_TRUE(removeRedundant(q).empty());
}

TEST(Redundancy, CascadingRemovalFindsMinimalForm) {
  // permit 11 / drop 1* / drop 10: complete removal first drops "1*"
  // (its effective set 10 is re-decided identically below), which then
  // exposes the permit as redundant — the minimal policy is just "10".
  Policy q;
  q.addRule(T("11"), Action::kPermit);
  q.addRule(T("1*"), Action::kDrop);
  int dup = q.addRule(T("10"), Action::kDrop);
  EXPECT_TRUE(isRedundant(q, dup));
  Policy original = q;
  removeRedundant(q);
  ASSERT_EQ(q.size(), 1u);
  EXPECT_EQ(q.rules()[0].matchField.toString(), "10");
  EXPECT_TRUE(q.semanticallyEquals(original));
}

TEST(Redundancy, IteratesToFixedPoint) {
  // Removing the middle rule exposes the top one as redundant.
  Policy q;
  q.addRule(T("11"), Action::kDrop);
  q.addRule(T("11"), Action::kDrop);  // duplicate at lower priority
  q.addRule(T("1*"), Action::kDrop);
  removeRedundant(q);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.rules()[0].matchField.toString(), "1*");
}

// Property: redundancy removal never changes policy semantics.
class RedundancyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RedundancyProperty, PreservesSemantics) {
  util::Rng rng(GetParam());
  classbench::GeneratorConfig cfg;
  cfg.rulesPerPolicy = 20;
  cfg.nestProbability = 0.7;  // heavy overlap: many redundancies
  classbench::PolicyGenerator gen(cfg, rng.next());
  Policy q = gen.generate();
  Policy original = q;
  auto removed = removeRedundant(q);
  EXPECT_TRUE(q.semanticallyEquals(original))
      << "removed " << removed.size() << " rules";
  // Every removed rule must indeed have been removable.
  EXPECT_LE(q.size() + removed.size(), original.size() + removed.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RedundancyProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace ruleplace::acl
